module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp

let format_tag = "mcm-journal-v1"

type header = { sweep : Key.t; cells : int }

type t = {
  j_path : string;
  mutable hdr : header option;
  mutable done_cells : int;
  mutable is_finished : bool;
  mutable oc : out_channel option;
  mutable closed : bool;
}

let path t = t.j_path
let header t = t.hdr
let progress t = t.done_cells
let finished t = t.is_finished

let apply_line t line =
  match Jsonp.parse line with
  | Error _ -> ()  (* malformed complete line: skip *)
  | Ok v -> (
      let str key = Option.bind (Jsonp.member key v) Jsonp.to_string_opt in
      let int key = Option.bind (Jsonp.member key v) Jsonp.to_int in
      match (str "journal", str "sweep", int "cells") with
      | Some tag, Some hex, Some cells when tag = format_tag -> (
          match Key.of_hex hex with
          | Ok sweep -> t.hdr <- Some { sweep; cells }
          | Error _ -> ())
      | _ -> (
          match int "done" with
          | Some d -> t.done_cells <- max t.done_cells d
          | None -> (
              match Option.bind (Jsonp.member "finished" v) (function
                  | Jsonw.Bool b -> Some b
                  | _ -> None)
              with
              | Some true -> t.is_finished <- true
              | _ -> ())))

let open_ j_path =
  let t =
    { j_path; hdr = None; done_cells = 0; is_finished = false; oc = None; closed = false }
  in
  if Sys.file_exists j_path then begin
    let content = In_channel.with_open_bin j_path In_channel.input_all in
    let len = String.length content in
    let pos = ref 0 in
    while !pos < len do
      match String.index_from_opt content !pos '\n' with
      | Some i ->
          apply_line t (String.sub content !pos (i - !pos));
          pos := i + 1
      | None ->
          (* Torn tail from a crash mid-append: ignore; [start] truncates. *)
          pos := len
    done
  end;
  t

let append t line =
  if t.closed then failwith "Mcm_campaign.Journal: journal is closed";
  let oc =
    match t.oc with
    | Some oc -> oc
    | None ->
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly; Open_binary ] 0o644 t.j_path
        in
        t.oc <- Some oc;
        oc
  in
  output_string oc (Jsonw.to_string line);
  output_char oc '\n';
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let release t =
  match t.oc with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.oc <- None

let header_line sweep cells =
  Jsonw.Obj
    [
      ("journal", Jsonw.String format_tag);
      ("sweep", Jsonw.String (Key.to_hex sweep));
      ("cells", Jsonw.Int cells);
    ]

let start t ~sweep ~cells =
  match t.hdr with
  | Some h when Key.equal h.sweep sweep && h.cells = cells && not t.is_finished ->
      (* Same unfinished sweep: keep the log, drop any torn tail so the
         next append starts on a line boundary, and resume. *)
      release t;
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly; Open_binary ] 0o644 t.j_path in
      close_out oc;
      (match In_channel.with_open_bin t.j_path In_channel.input_all with
      | "" -> ()
      | content ->
          let len = String.length content in
          if content.[len - 1] <> '\n' then begin
            let keep =
              match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
            in
            Unix.truncate t.j_path keep
          end);
      `Resumed t.done_cells
  | _ ->
      release t;
      (* Different (or finished) sweep: start over. *)
      let oc = open_out_gen [ Open_trunc; Open_creat; Open_wronly; Open_binary ] 0o644 t.j_path in
      close_out oc;
      t.hdr <- Some { sweep; cells };
      t.done_cells <- 0;
      t.is_finished <- false;
      append t (header_line sweep cells);
      `Fresh

let record t ~done_ =
  t.done_cells <- max t.done_cells done_;
  append t (Jsonw.Obj [ ("done", Jsonw.Int done_) ])

let finish t =
  t.is_finished <- true;
  append t (Jsonw.Obj [ ("finished", Jsonw.Bool true) ])

let close t =
  if not t.closed then begin
    release t;
    t.closed <- true
  end

let with_journal path f =
  let t = open_ path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
