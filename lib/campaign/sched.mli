(** A cache-aware sweep planner.

    [Sched] sits between a sweep grid and the domain {!Mcm_util.Pool}:
    it partitions the grid's cells into store hits and misses, dispatches
    only the misses to the pool, persists their results, and merges
    cached and fresh results back into grid order. Store and journal I/O
    stay in the calling domain — worker domains only ever run [f] — so
    the single-domain store contract holds by construction.

    Misses are processed in shards (default {!default_shard} cells): each
    shard is mapped on the pool, appended to the store, {!Store.flush}ed,
    and then checkpointed in the journal. A crash therefore loses at most
    one shard of compute, and a resumed sweep finds every earlier shard
    already cached.

    Determinism: results land at their grid index and cached payloads
    decode to exactly what the original run stored, so a warm (or
    partially warm) run is bit-identical to a cold one. A cached payload
    that fails to [decode] (e.g. written by a newer codec) is treated as
    a miss and recomputed — but not re-stored, since its key is already
    present. *)

type stats = {
  total : int;  (** grid cells *)
  hits : int;  (** served from the store *)
  misses : int;  (** computed this run *)
  decode_failures : int;  (** cached payloads that failed to decode *)
}

val pp_stats : Format.formatter -> stats -> unit

val default_shard : int

val plan :
  Store.t -> key:(int -> Key.t) -> n:int -> [ `Hit of Mcm_util.Jsonw.t | `Miss ] array
(** The hit/miss partition of an [n]-cell grid, without running anything. *)

val run :
  ?domains:int ->
  ?pool:Mcm_util.Pool.t ->
  ?shard:int ->
  ?chunk:int ->
  ?journal:Journal.t * Key.t ->
  ?family:(int -> int) ->
  store:Store.t ->
  key:(int -> Key.t) ->
  encode:('b -> Mcm_util.Jsonw.t) ->
  decode:(Mcm_util.Jsonw.t -> ('b, string) result) ->
  f:(int -> 'b) ->
  n:int ->
  unit ->
  'b array * stats
(** [run ~store ~key ~encode ~decode ~f ~n ()] computes
    [[| f 0; …; f (n-1) |]] through the store. [pool] reuses an existing
    pool (it is not shut down); otherwise a fresh pool of [domains] is
    created for the call. [chunk] is forwarded to each shard's
    {!Mcm_util.Pool.map_array} dispatch. [journal], when given with the sweep's
    configuration key, is {!Journal.start}ed before work and
    {!Journal.finish}ed after, with a checkpoint after every durable
    shard. [f] must be pure up to its index — the whole point is not to
    call it twice.

    [family i], when given, is the schema-family id of cell [i] (cells
    of one family share a compiled kernel image and memoized campaign
    prefix — see {!Mcm_testenv.Request.prefix_key}). Misses are
    stable-sorted by family before sharding, so whole columns run
    consecutively on a warm domain. Grouping is purely a dispatch-order
    optimisation: results still land at their grid indices and [stats]
    is unchanged, so the output is bit-identical with or without
    [family] — property-tested in [test/test_campaign.ml]. *)
