module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp

type t = {
  t_dir : string;
  lock : Unix.file_descr;  (** exclusive writer lock on [t_dir/LOCK] *)
  index : (Key.t, Jsonw.t) Hashtbl.t;
  fsync_every : int;
  max_segment_bytes : int;
  mutable oc : out_channel option;  (** append channel on the active segment *)
  mutable active : int;  (** active segment number *)
  mutable active_bytes : int;
  mutable unsynced : int;
  mutable closed : bool;
  mutable warns : string list;  (** newest first; reversed by {!warnings} *)
  mutable disk_bad : int;
  mutable disk_dups : int;
  mutable torn : int;
}

let dir t = t.t_dir

let segment_name n = Printf.sprintf "segment-%06d.jsonl" n

let segment_path t n = Filename.concat t.t_dir (segment_name n)

let segment_number name =
  (* "segment-" ^ 6 digits ^ ".jsonl" = 20 chars; anything else
     (including gc's ".tmp" scratch file) is not a segment. *)
  match String.length name with
  | 20
    when String.sub name 0 8 = "segment-"
         && Filename.check_suffix name ".jsonl" ->
      int_of_string_opt (String.sub name 8 6)
  | _ -> None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match segment_number name with Some n -> Some (n, name) | None -> None)
  |> List.sort compare

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let lock_file = "LOCK"

let lock_path dir = Filename.concat dir lock_file

(* Exclusive writer lock on the store directory. Two processes appending
   to the same segment files would interleave records and corrupt both
   stores, so a second writer must fail at open, loudly. [lockf] locks
   are per-process and kernel-released when the process dies, which is
   exactly the contract we want: a crashed writer never wedges the store
   (crash recovery and resume keep working), and handles within one
   process remain free to coordinate as before. *)
let acquire_lock dir =
  let path = lock_path dir in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  (try Unix.lockf fd Unix.F_TLOCK 0
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
     Unix.close fd;
     failwith
       (Printf.sprintf
          "Mcm_campaign.Store: %s is already open for writing by another process (writer \
           lock %s is held); close that process or point this one at a different store"
          dir path));
  fd

(* Version stamp. Cells are content-addressed and every key embeds
   [Key.code_version], so a stale store cannot corrupt results — old
   cells simply never hit — but a pre-scope store silently going 100%
   cold after an upgrade reads as data loss. Stamp the directory with
   the key code version that addressed its cells and refuse loudly on
   mismatch, naming both versions. *)
let version_file = "VERSION"

let version_mismatch dir stamped =
  failwith
    (Printf.sprintf
       "Mcm_campaign.Store: %s was written under key code version %S but this binary addresses \
        cells under %S (scoped cells never alias pre-scope ones) — point at a fresh store \
        directory or delete the old one"
       dir stamped Key.code_version)

(* [~create] writes the stamp when absent (writer open); the read-only
   path never creates files. A stamp-less directory that already holds
   segments predates stamping — treat it as the pre-scope version. *)
let check_version ~create dir =
  let path = Filename.concat dir version_file in
  if Sys.file_exists path then begin
    let stamped = String.trim (read_file path) in
    if stamped <> Key.code_version then version_mismatch dir stamped
  end
  else if list_segments dir <> [] then version_mismatch dir "pre-mcm-cell-v2 (no VERSION stamp)"
  else if create then
    Out_channel.with_open_bin path (fun oc -> output_string oc (Key.code_version ^ "\n"))

(* Scan one segment's content into complete lines plus an optional torn
   tail (trailing bytes without a final newline — the signature of a
   crash mid-append). [f line] consumes each complete line; the returned
   offset is where the torn tail starts, if any. *)
let scan_lines content f =
  let len = String.length content in
  let pos = ref 0 in
  let torn_at = ref None in
  while !pos < len do
    match String.index_from_opt content !pos '\n' with
    | Some i ->
        f (String.sub content !pos (i - !pos));
        pos := i + 1
    | None ->
        torn_at := Some !pos;
        pos := len
  done;
  !torn_at

type parsed = Record of Key.t * Jsonw.t | Bad of string

let parse_record line =
  match Jsonp.parse line with
  | Error e -> Bad ("unparseable record: " ^ e)
  | Ok v -> (
      match
        (Option.bind (Jsonp.member "k" v) Jsonp.to_string_opt, Jsonp.member "v" v)
      with
      | Some hex, Some payload -> (
          match Key.of_hex hex with
          | Ok key -> Record (key, payload)
          | Error e -> Bad e)
      | _ -> Bad "record missing \"k\"/\"v\"")

let record_line key payload =
  Jsonw.to_string (Jsonw.Obj [ ("k", Jsonw.String (Key.to_hex key)); ("v", payload) ]) ^ "\n"

let warn t msg = t.warns <- msg :: t.warns

let load_segment t name =
  let path = Filename.concat t.t_dir name in
  let content = read_file path in
  let torn_at =
    scan_lines content (fun line ->
        if line <> "" then
          match parse_record line with
          | Record (key, payload) ->
              if Hashtbl.mem t.index key then begin
                t.disk_dups <- t.disk_dups + 1;
                warn t (Printf.sprintf "%s: duplicate key %s (first record wins)" name
                          (Key.to_hex key))
              end
              else Hashtbl.add t.index key payload
          | Bad e ->
              t.disk_bad <- t.disk_bad + 1;
              warn t (Printf.sprintf "%s: skipping bad record (%s)" name e))
  in
  match torn_at with
  | None -> ()
  | Some offset ->
      t.torn <- t.torn + 1;
      warn t
        (Printf.sprintf "%s: truncating torn tail at byte %d (crash recovery)" name offset);
      (* Drop the partial record so future appends start on a line
         boundary; the lost cell is recomputed on demand. *)
      Unix.truncate path offset

let open_store ?(fsync_every = 64) ?(max_segment_bytes = 8 * 1024 * 1024) dir =
  mkdir_p dir;
  check_version ~create:true dir;
  let lock = acquire_lock dir in
  let t =
    {
      t_dir = dir;
      lock;
      index = Hashtbl.create 1024;
      fsync_every = max 1 fsync_every;
      max_segment_bytes = max 4096 max_segment_bytes;
      oc = None;
      active = 0;
      active_bytes = 0;
      unsynced = 0;
      closed = false;
      warns = [];
      disk_bad = 0;
      disk_dups = 0;
      torn = 0;
    }
  in
  let segments = list_segments dir in
  List.iter (fun (_, name) -> load_segment t name) segments;
  (match List.rev segments with
  | [] -> t.active <- 0
  | (last, name) :: _ ->
      let size = (Unix.stat (Filename.concat dir name)).Unix.st_size in
      if size >= t.max_segment_bytes then t.active <- last + 1
      else begin
        t.active <- last;
        t.active_bytes <- size
      end);
  t

let find t key = Hashtbl.find_opt t.index key
let mem t key = Hashtbl.mem t.index key
let count t = Hashtbl.length t.index
let warnings t = List.rev t.warns

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let flush t =
  match t.oc with
  | None -> ()
  | Some oc ->
      fsync_channel oc;
      t.unsynced <- 0

let release_channel t =
  match t.oc with
  | None -> ()
  | Some oc ->
      fsync_channel oc;
      close_out oc;
      t.oc <- None;
      t.unsynced <- 0

let append_channel t =
  if t.closed then failwith "Mcm_campaign.Store: store is closed";
  if t.active_bytes >= t.max_segment_bytes then begin
    release_channel t;
    t.active <- t.active + 1;
    t.active_bytes <- 0
  end;
  match t.oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly; Open_binary ] 0o644
          (segment_path t t.active)
      in
      t.oc <- Some oc;
      oc

let add t key payload =
  if not (Hashtbl.mem t.index key) then begin
    let oc = append_channel t in
    let line = record_line key payload in
    output_string oc line;
    t.active_bytes <- t.active_bytes + String.length line;
    Hashtbl.add t.index key payload;
    t.unsynced <- t.unsynced + 1;
    if t.unsynced >= t.fsync_every then begin
      fsync_channel oc;
      t.unsynced <- 0
    end
  end

type stats = {
  s_dir : string;
  s_records : int;
  s_segments : int;
  s_bytes : int;
  s_disk_bad : int;
  s_disk_duplicates : int;
  s_torn_tails : int;
}

let stats t =
  (match t.oc with Some oc -> Stdlib.flush oc | None -> ());
  let segments = list_segments t.t_dir in
  let bytes =
    List.fold_left
      (fun acc (_, name) ->
        acc + (Unix.stat (Filename.concat t.t_dir name)).Unix.st_size)
      0 segments
  in
  {
    s_dir = t.t_dir;
    s_records = count t;
    s_segments = List.length segments;
    s_bytes = bytes;
    s_disk_bad = t.disk_bad;
    s_disk_duplicates = t.disk_dups;
    s_torn_tails = t.torn;
  }

(* Best-effort directory fsync so the gc rename is durable before the
   old segments disappear. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let gc t =
  if t.closed then failwith "Mcm_campaign.Store: store is closed";
  release_channel t;
  let dropped = t.disk_bad + t.disk_dups in
  let keys = List.sort Key.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.index []) in
  let tmp = Filename.concat t.t_dir "segment-000000.jsonl.tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun k -> output_string oc (record_line k (Hashtbl.find t.index k))) keys;
  fsync_channel oc;
  close_out oc;
  let survivors = list_segments t.t_dir in
  Sys.rename tmp (segment_path t 0);
  List.iter
    (fun (n, name) -> if n <> 0 then Sys.remove (Filename.concat t.t_dir name))
    survivors;
  fsync_dir t.t_dir;
  t.disk_bad <- 0;
  t.disk_dups <- 0;
  t.torn <- 0;
  t.active <- 0;
  t.active_bytes <- (Unix.stat (segment_path t 0)).Unix.st_size;
  dropped

let close t =
  if not t.closed then begin
    release_channel t;
    (try Unix.close t.lock with Unix.Unix_error _ -> ());
    t.closed <- true
  end

let with_store ?fsync_every dir f =
  let t = open_store ?fsync_every dir in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Read-only snapshot access: the multi-reader half of the store
   discipline. No lock, no truncation, no file creation — a reader must
   be able to run while a live writer (the serve daemon, a sweep) holds
   [LOCK] and appends. Complete lines are immutable once written, so
   loading them yields a consistent prefix of the writer's store; a torn
   tail is simply skipped (it is either a crash artifact the writer will
   repair, or an append racing this very read). *)
module Ro = struct
  type ro = {
    ro_dir : string;
    ro_index : (Key.t, Jsonw.t) Hashtbl.t;
    ro_warns : string list;  (** oldest first *)
    ro_segments : int;
    ro_bytes : int;
  }

  let open_ro dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      failwith (Printf.sprintf "Mcm_campaign.Store: %s is not a readable store directory" dir);
    check_version ~create:false dir;
    let index = Hashtbl.create 1024 in
    let warns = ref [] in
    let warn msg = warns := msg :: !warns in
    let bytes = ref 0 in
    let segments = list_segments dir in
    List.iter
      (fun (_, name) ->
        let content = read_file (Filename.concat dir name) in
        bytes := !bytes + String.length content;
        let torn_at =
          scan_lines content (fun line ->
              if line <> "" then
                match parse_record line with
                | Record (key, payload) ->
                    if Hashtbl.mem index key then
                      warn
                        (Printf.sprintf "%s: duplicate key %s (first record wins)" name
                           (Key.to_hex key))
                    else Hashtbl.add index key payload
                | Bad e -> warn (Printf.sprintf "%s: skipping bad record (%s)" name e))
        in
        match torn_at with
        | None -> ()
        | Some offset ->
            warn
              (Printf.sprintf
                 "%s: skipping torn tail at byte %d (left for the writer to repair)" name
                 offset))
      segments;
    {
      ro_dir = dir;
      ro_index = index;
      ro_warns = List.rev !warns;
      ro_segments = List.length segments;
      ro_bytes = !bytes;
    }

  let dir ro = ro.ro_dir
  let find ro key = Hashtbl.find_opt ro.ro_index key
  let mem ro key = Hashtbl.mem ro.ro_index key
  let count ro = Hashtbl.length ro.ro_index
  let warnings ro = ro.ro_warns
  let segments ro = ro.ro_segments
  let bytes ro = ro.ro_bytes
end

type verify_report = {
  v_segments : int;
  v_records : int;
  v_bad : int;
  v_torn : int;
  v_duplicates : int;
}

let verify dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let seen = Hashtbl.create 1024 in
    let records = ref 0 and bad = ref 0 and torn = ref 0 and dups = ref 0 in
    let segments = list_segments dir in
    List.iter
      (fun (_, name) ->
        let content = read_file (Filename.concat dir name) in
        let torn_at =
          scan_lines content (fun line ->
              if line <> "" then
                match parse_record line with
                | Record (key, _) ->
                    if Hashtbl.mem seen key then incr dups
                    else begin
                      Hashtbl.add seen key ();
                      incr records
                    end
                | Bad _ -> incr bad)
        in
        if torn_at <> None then incr torn)
      segments;
    Ok
      {
        v_segments = List.length segments;
        v_records = !records;
        v_bad = !bad;
        v_torn = !torn;
        v_duplicates = !dups;
      }
  end

let verify_ok r = r.v_bad = 0 && r.v_torn = 0 && r.v_duplicates = 0

let pp_verify fmt r =
  Format.fprintf fmt "%d segment(s), %d record(s): %d bad, %d torn tail(s), %d duplicate(s)%s"
    r.v_segments r.v_records r.v_bad r.v_torn r.v_duplicates
    (if verify_ok r then " — clean" else "")
