(** An on-disk content-addressed result store.

    The store memoizes campaign cells: a {!Key.t} maps to the cell's
    result, serialized as a {!Mcm_util.Jsonw.t} value by the caller's
    codec. On disk it is a directory of append-only JSONL segments
    ([segment-NNNNNN.jsonl], one record per line, written through
    {!Mcm_util.Jsonw} and read back through {!Mcm_util.Jsonp}); in memory
    it is a hash index over every live record.

    Durability and recovery:
    - records are appended as complete lines and fsynced every
      [fsync_every] appends (and on {!flush}/{!close}), so a crash loses
      at most the last unsynced batch;
    - on open, a torn tail (a final line without its newline — the
      signature of a crash mid-append) is truncated away and the segment
      resumes from the last complete line;
    - a complete line that fails to parse or decode is skipped with a
      warning (see {!warnings}) rather than poisoning the store;
    - duplicate keys keep their first record; {!gc} rewrites the store
      into one compacted, deduplicated, corruption-free segment.

    A store handle is single-domain: confine opens, lookups and appends
    to the submitting domain and keep worker domains compute-only (the
    pattern {!Sched} enforces). Cells are memoization entries of pure
    functions, so losing records is always safe — they are recomputed.

    Store discipline: single writer, many readers. Opening a store for
    writing takes an exclusive writer lock ([dir/LOCK], POSIX [lockf]);
    a second {e process} opening the same directory for writing fails at
    {!open_store} with an error naming the lock path, instead of silently
    interleaving segment appends. The lock is per-process (handles inside
    one process are unaffected) and is released by the kernel if the
    process dies, so crash recovery and resume never find a stale lock.
    Read paths are lock-free: {!Ro.open_ro} snapshots the segments
    without touching the lock (or the files — a torn tail is skipped,
    never truncated), and {!verify} scans read-only, so [mcmutants cache
    stats]/[verify] and daemon-side readers run concurrently with a live
    writer. Because segments are append-only and records are complete
    lines, a snapshot read while the writer appends sees a prefix of the
    store — every complete record it finds is valid. *)

type t

val open_store : ?fsync_every:int -> ?max_segment_bytes:int -> string -> t
(** [open_store dir] opens (creating the directory if needed) and loads
    the store, applying the recovery rules above. Takes the exclusive
    writer lock on [dir/LOCK]; raises [Failure] naming the lock path if
    another process already holds it. [fsync_every] batches fsyncs
    (default 64 appends); [max_segment_bytes] rolls appends over to a
    fresh segment past this size (default 8 MiB).

    The directory is stamped ([dir/VERSION]) with {!Key.code_version};
    opening a store stamped with a different key code version — or a
    stamp-less directory that already holds segments, i.e. a pre-scope
    store — raises [Failure] naming both versions rather than silently
    running 100% cold. *)

val dir : t -> string

val find : t -> Key.t -> Mcm_util.Jsonw.t option
val mem : t -> Key.t -> bool

val add : t -> Key.t -> Mcm_util.Jsonw.t -> unit
(** [add t k v] appends the record unless [k] is already present (first
    write wins, matching recovery). *)

val flush : t -> unit
(** Flush and fsync the active segment. *)

val count : t -> int
(** Live records. *)

val warnings : t -> string list
(** Recovery warnings from {!open_store}, oldest first: skipped bad
    records, truncated torn tails, duplicate keys. *)

type stats = {
  s_dir : string;
  s_records : int;  (** live records in the index *)
  s_segments : int;
  s_bytes : int;  (** total on-disk segment bytes *)
  s_disk_bad : int;  (** complete-but-unparseable records seen at open *)
  s_disk_duplicates : int;  (** duplicate keys seen at open *)
  s_torn_tails : int;  (** torn tails truncated at open *)
}

val stats : t -> stats

val gc : t -> int
(** [gc t] compacts the store: every live record is rewritten, in key
    order, into a single fresh segment which atomically replaces the old
    ones. Returns the number of on-disk records dropped (bad records and
    duplicates). *)

val close : t -> unit
(** {!flush}, release the append channel and the writer lock. The handle
    degrades to read-only afterwards ([add] raises). *)

val with_store : ?fsync_every:int -> string -> (t -> 'a) -> 'a
(** Open, apply, and {!close} (also on exceptions). *)

(** {2 Read-only snapshot access}

    The multi-reader half of the store discipline: a lock-free,
    mutation-free view of the segments as they were at open time. Safe
    while another process holds the writer lock and appends — complete
    lines are immutable once written, so the snapshot is a consistent
    prefix of the writer's store. A torn tail (the writer, or a crash,
    mid-append) is skipped but {e not} truncated: repair belongs to the
    writer's recovery path, never to a reader. *)
module Ro : sig
  type ro

  val open_ro : string -> ro
  (** [open_ro dir] snapshot-loads every complete record. Never takes
      the writer lock, never creates or modifies anything on disk.
      Raises [Failure] only if [dir] is not a readable directory. *)

  val dir : ro -> string
  val find : ro -> Key.t -> Mcm_util.Jsonw.t option
  val mem : ro -> Key.t -> bool
  val count : ro -> int

  val warnings : ro -> string list
  (** Anomalies seen while loading, oldest first: skipped bad records,
      duplicate keys (first wins), torn tails left in place. *)

  val segments : ro -> int
  val bytes : ro -> int
  (** Segment count and total segment bytes at snapshot time. *)
end

(** {2 Offline integrity checking} *)

type verify_report = {
  v_segments : int;
  v_records : int;  (** well-formed records *)
  v_bad : int;  (** complete lines that fail to parse or decode *)
  v_torn : int;  (** segments ending in a torn tail *)
  v_duplicates : int;
}

val verify : string -> (verify_report, string) result
(** [verify dir] scans the segments read-only (no repair, no index
    build beyond key counting) and reports their integrity. [Error] is
    reserved for an unreadable directory. *)

val verify_ok : verify_report -> bool
(** No bad records, torn tails or duplicates. *)

val pp_verify : Format.formatter -> verify_report -> unit
