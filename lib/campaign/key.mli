(** Canonical, versioned content hashes of campaign cells.

    Every measurement in the evaluation — a {!Mcm_testenv.Runner}
    campaign of one test on one device in one environment — is a pure
    function of its configuration, so it can be memoized under a content
    hash of that configuration. A {!t} is an FNV-1a/64 hash over a
    canonical JSON serialization of the cell
    [(test, mutation, device profile, bug set, env params, seed,
    iterations, engine, code version)]:

    - the {e test} is serialized structurally (name, family — which for
      generated mutants is the mutator —, model, per-thread programs and
      the target description), so renaming or editing a test changes its
      keys;
    - the {e device} contributes its profile name and the folded
      per-instance bug effect, so a buggy device never shares cells with
      a correct one;
    - the {e environment} is the caller-provided canonical JSON (use
      {!Mcm_testenv.Params.to_json});
    - {!code_version} is baked into every hash, so bumping it after a
      semantics change in the simulator invalidates the whole store at
      once rather than serving stale results.

    Keys are deterministic across processes and OCaml versions (FNV-1a
    over bytes; no [Hashtbl.hash]). *)

type t
(** A 64-bit content hash. *)

val code_version : string
(** The cell-semantics version baked into every key. Bump on any change
    that alters what a campaign computes for the same configuration. *)

val fnv1a64 : string -> int64
(** The raw FNV-1a/64 hash of a byte string (offset basis
    [0xcbf29ce484222325], prime [0x100000001b3]) — exposed for tests. *)

val of_string : string -> t
(** [of_string blob] hashes an already-canonical byte string. *)

val of_fields : (string * Mcm_util.Jsonw.t) list -> t
(** [of_fields kvs] hashes the compact JSON object [kvs] with
    {!code_version} prepended — the canonical serialization every
    higher-level key builder goes through. *)

val test_blob : Mcm_litmus.Litmus.t -> string
(** The canonical serialization of a litmus test used inside {!cell}
    keys. Memoized per test value (tests are immutable and the shipped
    suites are generated once), so hot sweep loops pay the serialization
    only once per test. *)

val prefix_fields :
  engine:string ->
  test:Mcm_litmus.Litmus.t ->
  device:Mcm_gpu.Device.t ->
  env:Mcm_util.Jsonw.t ->
  unit ->
  (string * Mcm_util.Jsonw.t) list
(** The canonical {e prefix} of a cell: {!cell_fields} minus the payload
    kind, iteration count and seed. Two cells with equal prefix share
    every piece of the runner's derived setup (compiled kernel image,
    effective weak parameters, instance counts, slice horizon), so this
    list is the canonical identity under which
    {!Mcm_testenv.Runner}'s cross-cell memoization operates. *)

val cell_fields :
  kind:string ->
  engine:string ->
  test:Mcm_litmus.Litmus.t ->
  device:Mcm_gpu.Device.t ->
  env:Mcm_util.Jsonw.t ->
  iterations:int ->
  seed:int ->
  unit ->
  (string * Mcm_util.Jsonw.t) list
(** The canonical field list of one campaign cell — exactly what {!cell}
    hashes (after {!of_fields} prepends {!code_version}). Exposed so
    {!Mcm_testenv.Request} can expose the serialization itself: a
    request's canonical JSON {e is} this list, so pinning it pins the
    keys. *)

val cell :
  kind:string ->
  engine:string ->
  test:Mcm_litmus.Litmus.t ->
  device:Mcm_gpu.Device.t ->
  env:Mcm_util.Jsonw.t ->
  iterations:int ->
  seed:int ->
  unit ->
  t
(** [cell ~kind ~engine ~test ~device ~env ~iterations ~seed ()] is the
    key of one campaign cell. [kind] namespaces the cached payload shape
    (["run"], ["histogram"], ["outcomes"], …) so different result codecs
    never collide; [engine] is the runner engine's name. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** For [Hashtbl]-style indexing. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)

val of_hex : string -> (t, string) result
(** Inverse of {!to_hex}; rejects anything that is not exactly 16 hex
    digits. *)

val pp : Format.formatter -> t -> unit
