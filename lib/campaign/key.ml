module Jsonw = Mcm_util.Jsonw
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Model = Mcm_memmodel.Model
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug

type t = int64

(* v2: first-class memory scopes — instructions carry a scope, events
   carry workgroup ids, scoped fences change engine and oracle
   semantics, and [scopeDrop] joins the bug vector. Pre-scope cells
   must never alias scoped ones, so the whole store re-addresses. *)
let code_version = "mcm-cell-v2"

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let of_string = fnv1a64

let of_fields kvs =
  fnv1a64 (Jsonw.to_string (Jsonw.Obj (("codeVersion", Jsonw.String code_version) :: kvs)))

(* Canonical test serialization: the structural content of the test, not
   its identity. The target predicate is a closure; its canonical form is
   [target_desc], which every generator renders deterministically from
   the derived outcome set. *)
let test_blob_uncached (test : Litmus.t) =
  let thread instrs =
    Jsonw.List (List.map (fun i -> Jsonw.String (Instr.to_string ~loc_names:Litmus.loc_name i)) instrs)
  in
  Jsonw.to_string
    (Jsonw.Obj
       [
         ("name", Jsonw.String test.Litmus.name);
         ("family", Jsonw.String test.Litmus.family);
         ("model", Jsonw.String (Model.name test.Litmus.model));
         ("nlocs", Jsonw.Int test.Litmus.nlocs);
         ("threads", Jsonw.List (Array.to_list (Array.map thread test.Litmus.threads)));
         ("target", Jsonw.String test.Litmus.target_desc);
       ])

(* Tests are immutable values and the shipped suites are memoized
   singletons, so a physical-equality check on the cached entry is both
   safe and exact; a different test that reuses a name is re-serialized.
   (Structural equality is unavailable: [target] is a closure.) *)
let blob_cache : (string, Litmus.t * string) Hashtbl.t = Hashtbl.create 64

let test_blob (test : Litmus.t) =
  match Hashtbl.find_opt blob_cache test.Litmus.name with
  | Some (t, blob) when t == test -> blob
  | _ ->
      let blob = test_blob_uncached test in
      Hashtbl.replace blob_cache test.Litmus.name (test, blob);
      blob

let device_fields (device : Device.t) =
  let effect = Device.effect device in
  [
    ("profile", Jsonw.String device.Device.profile.Mcm_gpu.Profile.short_name);
    ( "bugs",
      Jsonw.Obj
        [
          ("corrReorder", Jsonw.Float effect.Bug.p_corr_reorder);
          ("fenceDrop", Jsonw.Float effect.Bug.p_fence_drop);
          ("coherenceAlias", Jsonw.Float effect.Bug.p_coherence_alias);
          ("scopeDrop", Jsonw.Float effect.Bug.p_scope_drop);
        ] );
  ]

(* The kernel's code version rides in every cell key (not just kernel-
   engine cells: the interpreter is differentially locked to the kernel,
   so a kernel-semantics bump invalidates both engines' results at
   once). Bumping [Kernel.code_version] therefore re-addresses the whole
   store, which is the point: schema-era results never alias pre-schema
   ones. *)
let kernel_version_field = ("kernelVersion", Jsonw.Int Mcm_gpu.Kernel.code_version)

(* The cell prefix: every field of {!cell_fields} except the payload
   kind, iteration count and seed. Cells sharing a prefix share all of
   the runner's derived setup (compiled image, effective weak params,
   instance counts, slice horizon) — this list is the canonical identity
   under which that work may be memoized. *)
let prefix_fields ~engine ~test ~device ~env () =
  [
    kernel_version_field;
    ("engine", Jsonw.String engine);
    ("test", Jsonw.String (test_blob test));
  ]
  @ device_fields device
  @ [ ("env", env) ]

let cell_fields ~kind ~engine ~test ~device ~env ~iterations ~seed () =
  [
    ("kind", Jsonw.String kind);
    kernel_version_field;
    ("engine", Jsonw.String engine);
    ("test", Jsonw.String (test_blob test));
  ]
  @ device_fields device
  @ [ ("env", env); ("iterations", Jsonw.Int iterations); ("seed", Jsonw.Int seed) ]

let cell ~kind ~engine ~test ~device ~env ~iterations ~seed () =
  of_fields (cell_fields ~kind ~engine ~test ~device ~env ~iterations ~seed ())

let equal = Int64.equal
let compare = Int64.compare
let hash k = Int64.to_int k land max_int

let to_hex k = Printf.sprintf "%016Lx" k

let of_hex s =
  if String.length s <> 16 then Error (Printf.sprintf "bad key %S: want 16 hex digits" s)
  else
    let ok =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        s
    in
    if not ok then Error (Printf.sprintf "bad key %S: non-hex character" s)
    else
      (* Parse as two halves: a 16-digit hex value with the top bit set
         overflows Int64.of_string's signed range. *)
      let half sub = Int64.of_string ("0x" ^ sub) in
      let hi = half (String.sub s 0 8) and lo = half (String.sub s 8 8) in
      Ok (Int64.logor (Int64.shift_left hi 32) lo)

let pp fmt k = Format.pp_print_string fmt (to_hex k)
