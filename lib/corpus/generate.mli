(** Template-driven enumeration of litmus program skeletons.

    A {e skeleton} is a litmus program with the concretisation erased:
    per-thread lists of symbolic slots — load/store/RMW on a numbered
    location, or a fence. The enumerator walks every skeleton inside a
    {!Shape} budget, prunes statically-uninteresting programs (threads
    with no memory access, programs with no write or no cross-thread
    conflict, fences at thread boundaries or adjacent to each other) and
    canonicalizes what survives: locations are renumbered by first use
    and threads are permuted to the lexicographic minimum, so two
    programs equal modulo renaming enumerate as one skeleton.

    Concretisation follows the paper's Sec. 3.1 convention (the same one
    {!Mcm_core.Mutator} uses): writes take unique increasing values per
    location in slot order, registers number sequentially per thread —
    so reads-from is inferable from observed values and the generated
    program is {!Mcm_litmus.Litmus.well_formed} by construction. *)

type sym = Ld of int | St of int | Um of int | Fn | Fw

type skeleton = sym list array
(** Canonical per-thread symbol lists. *)

val enumerate : Shape.t -> skeleton list * int
(** [enumerate shape] is the canonical, deduplicated skeletons within
    [shape] (deterministic order: first occurrence in the enumeration)
    and the number of raw pre-canonical programs that survived the
    static prunes — the denominator for dedup ratios. *)

val canonical : sym list array -> skeleton
(** [canonical threads] renumbers and permutes an arbitrary symbolic
    program to its canonical representative. Idempotent. *)

val of_threads : Mcm_litmus.Instr.t list array -> sym list array
(** Erase a concrete program back to symbols (values and registers
    dropped). *)

val concretize : skeleton -> Mcm_litmus.Instr.t list array
(** The canonical concretisation (unique increasing values per location,
    sequential registers per thread, in thread-major slot order). *)

val nlocs : skeleton -> int
(** One more than the highest location mentioned. *)

val to_string : skeleton -> string
(** Compact rendering like ["Sx Sy | Ly Lx"] (threads separated by
    [" | "]); injective on canonical skeletons — used as the dedup and
    naming key. *)

val sample : seed:int -> bound:int -> 'a list -> 'a list
(** [sample ~seed ~bound xs] is [xs] when it has at most [bound]
    elements, else a uniform [bound]-element subset drawn with
    {!Mcm_util.Prng} from [seed], order-preserving and deterministic. *)
