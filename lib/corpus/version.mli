(** Corpus generator identity.

    Generated tests are content-addressed through the campaign store
    ({!Mcm_campaign.Key}), whose test serialization hashes the [family]
    field. The corpus stamps {!version} — generator code version plus
    the operator set — into every generated test's family via {!family},
    so bumping the generator (or growing the operator set) re-addresses
    every cached cell at once: a stale store can never alias results
    computed for a differently-generated corpus. The same string is
    surfaced as [corpusVersion] in [mcmutants version --json] and in
    every saved corpus file. *)

val generator : int
(** The generator code version. Bump on any change to enumeration,
    canonicalization, concretisation or target derivation that can alter
    what a (shape, seed) pair produces. *)

val version : string
(** ["gen<N>+sdl+ror+uoi"] — {!generator} plus the operator set
    ({!Mcm_core.Mutator.all_ops}), in registry order. *)

val family : tag:string -> string
(** [family ~tag] is ["corpus/<version>/<tag>"] — the [family] of a
    generated test. [tag] distinguishes enumerated tests
    (["generated"]) from operator mutants (["op-sdl"], …). *)
