module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp

type t = {
  threads : int;
  events : int;
  locs : int;
  rmw : bool;
  fence : bool;
  wg_fence : bool;  (* admit workgroup-scoped fences into the alphabet *)
}

let default = { threads = 2; events = 4; locs = 2; rmw = false; fence = false; wg_fence = false }

(* The ranges keep exhaustive enumeration and per-program oracle checks
   tractable: 3x6x3 with the full alphabet is already tens of thousands
   of canonical programs. *)
let min_threads = 2
let max_threads = 3
let max_events = 6
let max_locs = 3

let ( let* ) = Result.bind

let component ~what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s must be an integer, got %S" what s)

let validate t =
  if t.threads < min_threads || t.threads > max_threads then
    Error (Printf.sprintf "threads must be in %d..%d, got %d" min_threads max_threads t.threads)
  else if t.events < t.threads || t.events > max_events then
    Error
      (Printf.sprintf "events must be in %d..%d (>= threads), got %d" t.threads max_events t.events)
  else if t.locs < 1 || t.locs > max_locs then
    Error (Printf.sprintf "locations must be in 1..%d, got %d" max_locs t.locs)
  else Ok t

let of_spec ?(rmw = false) ?(fence = false) ?(wg_fence = false) spec =
  match String.split_on_char 'x' (String.trim spec) with
  | [ k; e; l ] ->
      let* threads = component ~what:"threads" k in
      let* events = component ~what:"events" e in
      let* locs = component ~what:"locations" l in
      validate { threads; events; locs; rmw; fence; wg_fence }
  | _ -> Error (Printf.sprintf "expected THREADSxEVENTSxLOCS (e.g. 2x4x2), got %S" spec)

let to_spec t = Printf.sprintf "%dx%dx%d" t.threads t.events t.locs

let fields t =
  [
    ("threads", Jsonw.Int t.threads);
    ("events", Jsonw.Int t.events);
    ("locs", Jsonw.Int t.locs);
    ("rmw", Jsonw.Bool t.rmw);
    ("fence", Jsonw.Bool t.fence);
    ("wgFence", Jsonw.Bool t.wg_fence);
  ]

let of_json j =
  let* threads =
    match Option.bind (Jsonp.member "threads" j) Jsonp.to_int with
    | Some v -> Ok v
    | None -> Error "shape: missing threads"
  in
  let* events =
    match Option.bind (Jsonp.member "events" j) Jsonp.to_int with
    | Some v -> Ok v
    | None -> Error "shape: missing events"
  in
  let* locs =
    match Option.bind (Jsonp.member "locs" j) Jsonp.to_int with
    | Some v -> Ok v
    | None -> Error "shape: missing locs"
  in
  let bool_member key =
    match Jsonp.member key j with Some (Jsonw.Bool b) -> b | _ -> false
  in
  validate
    {
      threads;
      events;
      locs;
      rmw = bool_member "rmw";
      fence = bool_member "fence";
      wg_fence = bool_member "wgFence";
    }

let pp ppf t =
  Format.fprintf ppf "%s%s%s%s" (to_spec t)
    (if t.rmw then "+rmw" else "")
    (if t.fence then "+fence" else "")
    (if t.wg_fence then "+wgfence" else "")
