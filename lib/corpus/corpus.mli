(** The deterministic, content-addressed corpus format.

    A corpus is the output of one seeded generation run: its
    configuration ({!meta}), the admitted entries, and the admission
    statistics. The JSON serialization is canonical — entries in
    admission order, every test stored as its
    {!Mcm_litmus.Parse.to_source} program text — so the same (shape,
    model, seed, bound, ops, engine) always serializes to the same
    bytes, and {!key} content-addresses the whole corpus through
    {!Mcm_campaign.Key} (the generated tests' families already carry
    {!Version.version}, so every campaign cell a corpus run produces is
    keyed to the generator that made it).

    {!load} re-parses every entry's program text and re-derives its
    in-memory form, then recomputes {!key}; a mismatch against the
    recorded key — a hand-edited file, or a corpus written by a
    different generator version — is a load error, not a silent
    acceptance. *)

type meta = {
  shape : Shape.t;
  model : Mcm_memmodel.Model.t;
  seed : int;  (** drives sampling when [bound] caps the program count *)
  bound : int option;  (** cap on canonical programs fed to the oracle *)
  ops : Mcm_core.Mutator.op list;
      (** operators applied to the paper suite's conformance tests;
          [[]] disables the operator stage *)
  engine : Mcm_oracle.Engine.t;  (** oracle engine used for admission *)
  shard : (int * int) option;
      (** [(index, of)] slice of candidate enumeration; [None] is the
          whole space. Shards with equal meta-but-shard are pairwise
          disjoint and union-complete (see {!Admit.generated}), so
          generation fans out across processes. The shard is part of
          the content key: a shard's corpus never masquerades as the
          full one. *)
}

val default_meta : meta
(** {!Shape.default} under [Sc_per_location], seed 0, no bound, all
    operators, default engine, no shard. *)

type t = { meta : meta; entries : Admit.entry list; stats : Admit.stats }

val generate : ?cross_check:bool -> ?domains:int -> meta -> t
(** One full generation run: enumerate + sample + admit the shape, then
    the operator stage over {!Mcm_core.Suite.conformance_tests}, then a
    global behavioural dedup. Deterministic for equal [meta]. *)

val key : t -> Mcm_campaign.Key.t
(** The corpus content key: generator version, meta and every entry's
    canonical test serialization ({!Mcm_campaign.Key.test_blob}). *)

val to_json : t -> Mcm_util.Jsonw.t

val to_string : t -> string
(** Canonical bytes: [Jsonw.to_string (to_json t)] — byte-identical for
    equal corpora, the reproducibility contract the bench asserts. *)

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
(** Parse, rebuild every entry (program text through
    {!Mcm_litmus.Parse.parse}, stored family restored), and verify the
    recorded content key against the recomputed one. *)

val of_string : string -> (t, string) result

(** One entry's re-proof, for [mcmutants corpus certify]. *)
type recheck = {
  name : string;
  engines_agree : bool;  (** Enumerate and Propagate verdicts identical *)
  matches_stored : bool;  (** fresh verdict equals the stored certificate *)
  detail : string;  (** the fresh verdict's evidence, or the divergence *)
}

val recertify : ?domains:int -> t -> recheck list
(** Re-certify every entry under {e both} oracle engines through the
    gate's own path ({!Admit.certify}) and compare against the stored
    certificate. Any [false] field is admission-verdict drift. *)
