module Instr = Mcm_litmus.Instr
module Litmus = Mcm_litmus.Litmus
module Prng = Mcm_util.Prng
module Scope = Mcm_memmodel.Scope

type sym = Ld of int | St of int | Um of int | Fn | Fw
type skeleton = sym list array

let sym_string = function
  | Ld l -> "L" ^ Litmus.loc_name l
  | St l -> "S" ^ Litmus.loc_name l
  | Um l -> "U" ^ Litmus.loc_name l
  | Fn -> "F"
  | Fw -> "Fw"

let to_string sk =
  String.concat " | "
    (Array.to_list (Array.map (fun t -> String.concat " " (List.map sym_string t)) sk))

let nlocs sk =
  Array.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc s -> match s with Ld l | St l | Um l -> max acc (l + 1) | Fn | Fw -> acc)
        acc t)
    0 sk

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                     *)

let permutations xs =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        List.concat
          (List.mapi
             (fun i x ->
               let rest = List.filteri (fun j _ -> j <> i) xs in
               List.map (fun p -> x :: p) (perms rest))
             xs)
  in
  perms xs

let renumber threads =
  let map = Hashtbl.create 4 in
  let next = ref 0 in
  let num l =
    match Hashtbl.find_opt map l with
    | Some v -> v
    | None ->
        let v = !next in
        incr next;
        Hashtbl.add map l v;
        v
  in
  List.map
    (List.map (function
      | Ld l -> Ld (num l)
      | St l -> St (num l)
      | Um l -> Um (num l)
      | (Fn | Fw) as f -> f))
    threads

let canonical threads =
  let best = ref None in
  List.iter
    (fun perm ->
      let cand = renumber perm in
      match !best with
      | None -> best := Some cand
      | Some b -> if compare cand b < 0 then best := Some cand)
    (permutations (Array.to_list threads));
  Array.of_list (Option.get !best)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)

let alphabet (shape : Shape.t) =
  List.concat_map
    (fun l -> (Ld l :: St l :: (if shape.rmw then [ Um l ] else [])))
    (List.init shape.locs Fun.id)
  @ (if shape.fence then [ Fn ] else [])
  @ (if shape.wg_fence then [ Fw ] else [])

(* Every way to split [n] events over [k] threads, each getting >= 1. *)
let rec compositions n k =
  if k = 1 then if n >= 1 then [ [ n ] ] else []
  else
    List.concat
      (List.init (n - k + 1) (fun i ->
           let first = i + 1 in
           List.map (fun rest -> first :: rest) (compositions (n - first) (k - 1))))

let is_fence_sym = function Fn | Fw -> true | Ld _ | St _ | Um _ -> false

(* All symbol sequences of [len], pruning fences that cannot order
   anything: leading, trailing, or adjacent to another fence. *)
let iter_seqs alpha len f =
  let rec go prev remaining acc =
    if remaining = 0 then (
      match prev with Some p when is_fence_sym p -> () | _ -> f (List.rev acc))
    else
      List.iter
        (fun s ->
          let prev_fence = match prev with None -> true | Some p -> is_fence_sym p in
          if not (is_fence_sym s && prev_fence) then go (Some s) (remaining - 1) (s :: acc))
        alpha
  in
  go None len []

let is_access = function Ld _ | St _ | Um _ -> true | Fn | Fw -> false
let is_write = function St _ | Um _ -> true | Ld _ | Fn | Fw -> false
let loc_of = function Ld l | St l | Um l -> Some l | Fn | Fw -> None

(* A skeleton is statically interesting when every thread touches
   memory, something writes, and some location is written by one thread
   and touched by another — otherwise no target could ever derive. *)
let interesting threads =
  Array.for_all (List.exists is_access) threads
  && Array.exists (List.exists is_write) threads
  &&
  let touched tid l =
    List.exists (fun s -> loc_of s = Some l) threads.(tid)
  and writes tid l =
    List.exists (fun s -> is_write s && loc_of s = Some l) threads.(tid)
  in
  let n = Array.length threads in
  let locs = nlocs threads in
  let conflict = ref false in
  for l = 0 to locs - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && writes i l && touched j l then conflict := true
      done
    done
  done;
  !conflict

let enumerate (shape : Shape.t) =
  let alpha = alphabet shape in
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let raw = ref 0 in
  let visit threads =
    if interesting threads then begin
      incr raw;
      let c = canonical threads in
      let key = to_string c in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := c :: !out
      end
    end
  in
  for k = 2 to shape.threads do
    for n = k to shape.events do
      List.iter
        (fun lens ->
          let rec fill acc = function
            | [] -> visit (Array.of_list (List.rev acc))
            | len :: rest -> iter_seqs alpha len (fun seq -> fill (seq :: acc) rest)
          in
          fill [] lens)
        (compositions n k)
    done
  done;
  (List.rev !out, !raw)

(* ------------------------------------------------------------------ *)
(* Concretisation                                                       *)

let of_threads threads =
  Array.map
    (List.map (function
      | Instr.Load { loc; _ } -> Ld loc
      | Instr.Store { loc; _ } -> St loc
      | Instr.Rmw { loc; _ } -> Um loc
      | Instr.Fence { scope = Scope.Device } -> Fn
      | Instr.Fence { scope = Scope.Workgroup } -> Fw))
    threads

let concretize sk =
  let next_value = Hashtbl.create 4 and next_reg = Hashtbl.create 4 in
  let fresh tbl key =
    let v = try Hashtbl.find tbl key with Not_found -> 0 in
    Hashtbl.replace tbl key (v + 1);
    v
  in
  Array.mapi
    (fun tid syms ->
      List.map
        (function
          | Ld l -> Instr.load ~reg:(fresh next_reg tid) ~loc:l ()
          | St l -> Instr.store ~loc:l ~value:(1 + fresh next_value l) ()
          | Um l -> Instr.rmw ~reg:(fresh next_reg tid) ~loc:l ~value:(1 + fresh next_value l) ()
          | Fn -> Instr.fence ()
          | Fw -> Instr.fence ~scope:Scope.Workgroup ())
        syms)
    sk

(* ------------------------------------------------------------------ *)
(* Seeded sampling                                                      *)

let sample ~seed ~bound xs =
  let n = List.length xs in
  if bound >= n then xs
  else begin
    let idx = Array.init n Fun.id in
    let g = Prng.create seed in
    Prng.shuffle_in_place g idx;
    let chosen = Array.sub idx 0 (max 0 bound) in
    Array.sort compare chosen;
    let arr = Array.of_list xs in
    Array.to_list (Array.map (fun i -> arr.(i)) chosen)
  end
