module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Parse = Mcm_litmus.Parse
module Mutator = Mcm_core.Mutator
module Suite = Mcm_core.Suite
module Engine = Mcm_oracle.Engine
module Certify = Mcm_oracle.Certify
module Key = Mcm_campaign.Key
module Pool = Mcm_util.Pool
module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp

type meta = {
  shape : Shape.t;
  model : Model.t;
  seed : int;
  bound : int option;
  ops : Mutator.op list;
  engine : Engine.t;
  shard : (int * int) option;
}

let default_meta =
  {
    shape = Shape.default;
    model = Model.Sc_per_location;
    seed = 0;
    bound = None;
    ops = Mutator.all_ops;
    engine = Engine.default;
    shard = None;
  }

type t = { meta : meta; entries : Admit.entry list; stats : Admit.stats }

let generate ?(cross_check = false) ?(domains = 1) meta =
  let gen_entries, gen_stats =
    Admit.generated ~engine:meta.engine ~cross_check ~domains ?bound:meta.bound ~seed:meta.seed
      ?shard:meta.shard ~model:meta.model meta.shape
  in
  let op_entries, op_stats =
    if meta.ops = [] then ([], Admit.zero_stats)
    else
      Admit.operator_mutants ~engine:meta.engine ~cross_check ~domains ?shard:meta.shard
        ~ops:meta.ops
        (List.map (fun e -> e.Suite.test) (Suite.conformance_tests ()))
  in
  let entries, dups = Admit.dedup (gen_entries @ op_entries) in
  let count p = List.length (List.filter (fun (e : Admit.entry) -> e.polarity = p) entries) in
  let operator_mutants =
    List.length (List.filter (fun (e : Admit.entry) -> e.op <> None) entries)
  in
  let stats =
    {
      (Admit.combine_stats gen_stats op_stats) with
      admitted = List.length entries;
      conformance = count Admit.Conformance;
      weak = count Admit.Mutant_weak;
      interleaved = count Admit.Mutant_interleaved;
      operator_mutants;
      duplicates = gen_stats.Admit.duplicates + op_stats.Admit.duplicates + dups;
    }
  in
  { meta; entries; stats }

(* ------------------------------------------------------------------ *)
(* Content key                                                          *)

let opt_string = function None -> Jsonw.Null | Some s -> Jsonw.String s

let meta_fields meta =
  [
    ("corpusVersion", Jsonw.String Version.version);
    ("shape", Jsonw.Obj (Shape.fields meta.shape));
    ("model", Jsonw.String (Model.name meta.model));
    ("seed", Jsonw.Int meta.seed);
    ("bound", match meta.bound with None -> Jsonw.Null | Some b -> Jsonw.Int b);
    ("ops", Jsonw.List (List.map (fun o -> Jsonw.String (Mutator.op_name o)) meta.ops));
    ("engine", Jsonw.String (Engine.name meta.engine));
    ( "shard",
      match meta.shard with
      | None -> Jsonw.Null
      | Some (k, n) -> Jsonw.Obj [ ("index", Jsonw.Int k); ("of", Jsonw.Int n) ] );
  ]

let key t =
  Key.of_fields
    (("kind", Jsonw.String "corpus")
    :: meta_fields t.meta
    @ [
        ( "entries",
          Jsonw.List
            (List.map
               (fun (e : Admit.entry) ->
                 Jsonw.Obj
                   [
                     ("name", Jsonw.String e.test.Litmus.name);
                     ("polarity", Jsonw.String (Admit.polarity_name e.polarity));
                     ("skeleton", Jsonw.String e.skeleton);
                     ("parent", opt_string e.parent);
                     ("op", opt_string e.op);
                     ("blob", Jsonw.String (Key.test_blob e.test));
                   ])
               t.entries) );
      ])

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)

let entry_to_json (e : Admit.entry) =
  Jsonw.Obj
    [
      ("name", Jsonw.String e.test.Litmus.name);
      ("family", Jsonw.String e.test.Litmus.family);
      ("polarity", Jsonw.String (Admit.polarity_name e.polarity));
      ("skeleton", Jsonw.String e.skeleton);
      ("parent", opt_string e.parent);
      ("op", opt_string e.op);
      ( "verdict",
        Jsonw.Obj
          [
            ("ok", Jsonw.Bool e.verdict.Certify.ok);
            ("role", Jsonw.String e.verdict.Certify.role);
            ("detail", Jsonw.String e.verdict.Certify.detail);
          ] );
      ("source", Jsonw.String (Parse.to_source e.test));
    ]

(* v2: scoped corpora — meta records the shard slice, skeletons may
   carry workgroup fences. v1 files predate scopes and must not load
   silently into a scoped binary. *)
let format_version = 2

let to_json t =
  Jsonw.Obj
    (("formatVersion", Jsonw.Int format_version)
    :: meta_fields t.meta
    @ [
        ("key", Jsonw.String (Key.to_hex (key t)));
        ("stats", Jsonw.Obj (Admit.stats_fields t.stats));
        ("entries", Jsonw.List (List.map entry_to_json t.entries));
      ])

let to_string t = Jsonw.to_string (to_json t)

let save ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Loading                                                              *)

let ( let* ) = Result.bind

let member_string what key j =
  match Option.bind (Jsonp.member key j) Jsonp.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: missing %s" what key)

let member_opt_string key j =
  match Jsonp.member key j with Some (Jsonw.String s) -> Some s | _ -> None

let entry_of_json j =
  let* name = member_string "corpus entry" "name" j in
  let what = "corpus entry " ^ name in
  let* family = member_string what "family" j in
  let* polarity_s = member_string what "polarity" j in
  let* polarity =
    match Admit.polarity_of_string polarity_s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "%s: unknown polarity %S" what polarity_s)
  in
  let* skeleton = member_string what "skeleton" j in
  let* source = member_string what "source" j in
  let* parsed = Result.map_error (fun e -> what ^ ": " ^ e) (Parse.parse source) in
  if parsed.Litmus.name <> name then
    Error (Printf.sprintf "%s: source names %S" what parsed.Litmus.name)
  else
    let test = { parsed with Litmus.family } in
    let* verdict_json =
      match Jsonp.member "verdict" j with
      | Some v -> Ok v
      | None -> Error (what ^ ": missing verdict")
    in
    let* role = member_string what "role" verdict_json in
    let* detail = member_string what "detail" verdict_json in
    let ok = match Jsonp.member "ok" verdict_json with Some (Jsonw.Bool b) -> b | _ -> false in
    Ok
      {
        Admit.test;
        polarity;
        skeleton;
        parent = member_opt_string "parent" j;
        op = member_opt_string "op" j;
        verdict = { Certify.test = name; model = test.Litmus.model; role; ok; detail };
      }

let stats_of_json j =
  let get key =
    match Option.bind (Jsonp.member key j) Jsonp.to_int with Some v -> v | None -> 0
  in
  {
    Admit.raw = get "raw";
    programs = get "programs";
    candidates = get "candidates";
    admitted = get "admitted";
    conformance = get "conformance";
    weak = get "weak";
    interleaved = get "interleaved";
    operator_mutants = get "operatorMutants";
    rejected = get "rejected";
    duplicates = get "duplicates";
    uncertified = get "uncertified";
    disagreements = get "disagreements";
  }

let meta_of_json j =
  let* version = member_string "corpus" "corpusVersion" j in
  if version <> Version.version then
    Error
      (Printf.sprintf "corpus was generated by %S, this binary is %S — regenerate" version
         Version.version)
  else
    let* shape_json =
      match Jsonp.member "shape" j with Some s -> Ok s | None -> Error "corpus: missing shape"
    in
    let* shape = Shape.of_json shape_json in
    let* model_s = member_string "corpus" "model" j in
    let* model =
      match Model.of_string model_s with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "corpus: unknown model %S" model_s)
    in
    let* engine_s = member_string "corpus" "engine" j in
    let* engine =
      match Engine.of_string engine_s with
      | Some e -> Ok e
      | None -> Error (Printf.sprintf "corpus: unknown engine %S" engine_s)
    in
    let seed = match Option.bind (Jsonp.member "seed" j) Jsonp.to_int with Some s -> s | None -> 0 in
    let bound = Option.bind (Jsonp.member "bound" j) Jsonp.to_int in
    let* ops =
      match Jsonp.member "ops" j with
      | None -> Ok []
      | Some l ->
          List.fold_left
            (fun acc o ->
              let* acc = acc in
              match Option.bind (Jsonp.to_string_opt o) Mutator.op_of_string with
              | Some op -> Ok (acc @ [ op ])
              | None -> Error "corpus: unknown operator in ops")
            (Ok []) (Jsonp.to_list l)
    in
    let* shard =
      match Jsonp.member "shard" j with
      | None | Some Jsonw.Null -> Ok None
      | Some s -> (
          match
            ( Option.bind (Jsonp.member "index" s) Jsonp.to_int,
              Option.bind (Jsonp.member "of" s) Jsonp.to_int )
          with
          | Some k, Some n when 0 <= k && k < n -> Ok (Some (k, n))
          | _ -> Error "corpus: malformed shard (want {index, of} with 0 <= index < of)")
    in
    Ok { shape; model; seed; bound; ops; engine; shard }

let of_string s =
  let* j = Jsonp.parse s in
  let* () =
    match Option.bind (Jsonp.member "formatVersion" j) Jsonp.to_int with
    | Some v when v = format_version -> Ok ()
    | Some v ->
        Error
          (Printf.sprintf
             "corpus file has formatVersion %d but this binary reads formatVersion %d (scoped \
              corpora) — regenerate with this binary"
             v format_version)
    | None -> Error "corpus: missing formatVersion"
  in
  let* meta = meta_of_json j in
  let* recorded_key = member_string "corpus" "key" j in
  let* entries =
    match Jsonp.member "entries" j with
    | None -> Error "corpus: missing entries"
    | Some l ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* entry = entry_of_json e in
            Ok (acc @ [ entry ]))
          (Ok []) (Jsonp.to_list l)
  in
  let stats =
    match Jsonp.member "stats" j with Some s -> stats_of_json s | None -> Admit.zero_stats
  in
  let t = { meta; entries; stats } in
  let recomputed = Key.to_hex (key t) in
  if recomputed <> recorded_key then
    Error
      (Printf.sprintf
         "corpus: content key mismatch (recorded %s, recomputed %s) — the file was edited or \
          written by a different generator"
         recorded_key recomputed)
  else Ok t

let load ~path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Re-certification                                                     *)

type recheck = {
  name : string;
  engines_agree : bool;
  matches_stored : bool;
  detail : string;
}

let recertify ?(domains = 1) t =
  let arr = Array.of_list t.entries in
  let pool = Pool.create ~domains () in
  let rechecks =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.map_array pool ~n:(Array.length arr) ~f:(fun i ->
            let (e : Admit.entry) = arr.(i) in
            let ve = Admit.certify ~engine:Engine.Enumerate e.polarity e.test in
            let vp = Admit.certify ~engine:Engine.Propagate e.polarity e.test in
            let agree =
              ve.Certify.ok = vp.Certify.ok && ve.Certify.detail = vp.Certify.detail
            in
            let matches =
              vp.Certify.ok = e.verdict.Certify.ok
              && vp.Certify.detail = e.verdict.Certify.detail
              && vp.Certify.role = e.verdict.Certify.role
            in
            let detail =
              if not agree then
                Printf.sprintf "engines disagree: enumerate %B (%s) vs propagate %B (%s)"
                  ve.Certify.ok ve.Certify.detail vp.Certify.ok vp.Certify.detail
              else if not matches then
                Printf.sprintf "verdict drifted: stored %B (%s), fresh %B (%s)"
                  e.verdict.Certify.ok e.verdict.Certify.detail vp.Certify.ok vp.Certify.detail
              else vp.Certify.detail
            in
            { name = e.test.Litmus.name; engines_agree = agree; matches_stored = matches; detail }))
  in
  Array.to_list rechecks
