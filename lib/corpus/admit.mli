(** Oracle-certified admission of generated litmus tests.

    Enumerated skeletons carry no target; this module derives one and
    lets the axiomatic oracle decide whether the program earns a place
    in the corpus. For each canonical program [P] under model [M] the
    gate computes three exact outcome sets through {!Mcm_oracle.Outcome}
    (all candidate outcomes; outcomes allowed under [M]; outcomes
    allowed under plain SC) plus the whole-thread serial baseline
    ({!Mcm_litmus.Classify.sequential_outcomes}), and derives:

    - a {e conformance} test whenever some candidate outcome is
      disallowed under [M] — its target is exactly the disallowed set;
    - a {e mutant} whenever [M] allows something beyond the serial
      baseline — preferring the {e weak} flavour (allowed under [M] but
      not under SC: genuine weak-memory behaviour, the classic
      two-location tests), falling back to the {e interleaved} flavour
      (SC-consistent but unreachable serially: killed by fine-grained
      interleaving alone, the paper's mutator-1 territory).

    Every derived test is then re-proved by {!Mcm_oracle.Certify} —
    an independent code path from the derivation — and admitted only
    with an [ok] verdict; programs deriving nothing are rejected, and
    behavioural duplicates (same canonical skeleton, model and polarity)
    are dropped. With [cross_check] the whole derivation re-runs under
    the second oracle engine and any difference — in the admitted set,
    a target, or a certificate — counts as a disagreement; the
    acceptance gate asserts the count is zero.

    Target descriptions are rendered exactly as
    {!Mcm_litmus.Parse.to_source} renders targets (a disjunction of
    full-outcome conjunctions, canonically sorted), so a generated
    test survives [parse ∘ print] with its description — and therefore
    its {!Mcm_campaign.Key.test_blob} and every store key — unchanged. *)

type polarity = Conformance | Mutant_weak | Mutant_interleaved

val polarity_name : polarity -> string
(** ["conformance"] / ["mutant-weak"] / ["mutant-interleaved"]. *)

val polarity_of_string : string -> polarity option

type entry = {
  test : Mcm_litmus.Litmus.t;
  polarity : polarity;
  skeleton : string;  (** canonical skeleton, {!Generate.to_string} form *)
  parent : string option;  (** operator mutants: the transformed test *)
  op : string option;  (** operator mutants: {!Mcm_core.Mutator.op_name} *)
  verdict : Mcm_oracle.Certify.verdict;  (** always [ok] for admitted entries *)
}

type stats = {
  raw : int;  (** pre-canonical programs surviving static prunes *)
  programs : int;  (** canonical programs examined *)
  candidates : int;  (** candidate executions enumerated across them *)
  admitted : int;
  conformance : int;
  weak : int;
  interleaved : int;
  operator_mutants : int;
  rejected : int;  (** programs (or variants) deriving no target *)
  duplicates : int;  (** behavioural duplicates dropped *)
  uncertified : int;  (** derived tests failing certification (gate bug) *)
  disagreements : int;  (** cross-engine divergences (must be 0) *)
}

val zero_stats : stats
val combine_stats : stats -> stats -> stats
val stats_fields : stats -> (string * Mcm_util.Jsonw.t) list

val generated :
  ?engine:Mcm_oracle.Engine.t ->
  ?cross_check:bool ->
  ?domains:int ->
  ?bound:int ->
  ?seed:int ->
  ?shard:int * int ->
  model:Mcm_memmodel.Model.t ->
  Shape.t ->
  entry list * stats
(** [generated ~model shape] enumerates, samples (when [bound] caps the
    program count; [seed] drives the sample, default 0), derives,
    certifies and dedups. [domains] shards per-program oracle work over
    a {!Mcm_util.Pool}; results are bit-identical for every value.

    [shard:(k, n)] keeps only candidates at index [i] with
    [i mod n = k] of the canonical (post-sample) program list, {e
    before} any oracle work: each of [n] shards does 1/[n] of the
    admission cost, shards are pairwise disjoint, and the union of all
    [n] shards' candidate sets is exactly the unsharded set. Raises
    [Invalid_argument] unless [0 <= k < n]. *)

val operator_mutants :
  ?engine:Mcm_oracle.Engine.t ->
  ?cross_check:bool ->
  ?domains:int ->
  ?shard:int * int ->
  ops:Mcm_core.Mutator.op list ->
  Mcm_litmus.Litmus.t list ->
  entry list * stats
(** [operator_mutants ~ops tests] applies every operator to every test
    (typically the paper suite's conformance tests), derives a mutant
    target for each variant through the same ladder and admits it
    through the same gate. Variants keep their parent's concretisation
    so the relation to the parent stays readable; entry [family]
    records the operator. [shard] slices the variant list exactly as in
    {!generated}. *)

val certify :
  engine:Mcm_oracle.Engine.t -> polarity -> Mcm_litmus.Litmus.t -> Mcm_oracle.Certify.verdict
(** The certification call the gate itself makes for a polarity —
    exposed so {!Corpus.recertify} re-proves stored certificates through
    the identical path. *)

val dedup : entry list -> entry list * int
(** Drop entries equal on (canonical skeleton, model, polarity), keeping
    the first; returns survivors and the dropped count. *)
