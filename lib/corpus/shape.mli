(** Bounded program shapes for the litmus enumerator.

    A shape is the structural budget the generator enumerates within:
    how many threads, how many events in total, how many distinct
    locations, and whether RMWs and fences join the instruction
    alphabet. Shapes parse from the CLI spelling
    ["THREADSxEVENTSxLOCS"] (e.g. ["2x4x2"]); parsing is strict in the
    PR-4 [MCM_*] convention — any malformed or out-of-range component
    is an [Error] naming the offending piece, never a silent default. *)

type t = {
  threads : int;  (** maximum thread count, [2..3] *)
  events : int;  (** maximum total instruction count, [threads..6] *)
  locs : int;  (** maximum distinct locations, [1..3] *)
  rmw : bool;  (** admit read-modify-writes into the alphabet *)
  fence : bool;  (** admit device-scope fences into the alphabet *)
  wg_fence : bool;  (** admit workgroup-scope fences into the alphabet *)
}

val default : t
(** [2x4x2], no RMWs, no fences — the classic two-thread/four-event
    space where the paper's weak-memory tests live. *)

val of_spec : ?rmw:bool -> ?fence:bool -> ?wg_fence:bool -> string -> (t, string) result
(** [of_spec "KxExL"] parses and validates a shape. Errors name what is
    wrong (["expected THREADSxEVENTSxLOCS (e.g. 2x4x2), got \"...\""],
    ["threads must be in 2..3, got 7"], …) so the CLI can prefix the
    flag name and fail loudly. *)

val to_spec : t -> string
(** The ["KxExL"] spelling back (RMW/fence flags are not part of it). *)

val fields : t -> (string * Mcm_util.Jsonw.t) list
(** Canonical JSON fields — part of the corpus content key. *)

val of_json : Mcm_util.Jsonw.t -> (t, string) result
(** Inverse of [Obj (fields t)]. *)

val pp : Format.formatter -> t -> unit
