module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Enumerate = Mcm_litmus.Enumerate
module Classify = Mcm_litmus.Classify
module Mutator = Mcm_core.Mutator
module Engine = Mcm_oracle.Engine
module Outcome = Mcm_oracle.Outcome
module Certify = Mcm_oracle.Certify
module Key = Mcm_campaign.Key
module Pool = Mcm_util.Pool
module Jsonw = Mcm_util.Jsonw

type polarity = Conformance | Mutant_weak | Mutant_interleaved

let polarity_name = function
  | Conformance -> "conformance"
  | Mutant_weak -> "mutant-weak"
  | Mutant_interleaved -> "mutant-interleaved"

let polarity_of_string = function
  | "conformance" -> Some Conformance
  | "mutant-weak" -> Some Mutant_weak
  | "mutant-interleaved" -> Some Mutant_interleaved
  | _ -> None

type entry = {
  test : Litmus.t;
  polarity : polarity;
  skeleton : string;
  parent : string option;
  op : string option;
  verdict : Certify.verdict;
}

type stats = {
  raw : int;
  programs : int;
  candidates : int;
  admitted : int;
  conformance : int;
  weak : int;
  interleaved : int;
  operator_mutants : int;
  rejected : int;
  duplicates : int;
  uncertified : int;
  disagreements : int;
}

let zero_stats =
  {
    raw = 0;
    programs = 0;
    candidates = 0;
    admitted = 0;
    conformance = 0;
    weak = 0;
    interleaved = 0;
    operator_mutants = 0;
    rejected = 0;
    duplicates = 0;
    uncertified = 0;
    disagreements = 0;
  }

let combine_stats a b =
  {
    raw = a.raw + b.raw;
    programs = a.programs + b.programs;
    candidates = a.candidates + b.candidates;
    admitted = a.admitted + b.admitted;
    conformance = a.conformance + b.conformance;
    weak = a.weak + b.weak;
    interleaved = a.interleaved + b.interleaved;
    operator_mutants = a.operator_mutants + b.operator_mutants;
    rejected = a.rejected + b.rejected;
    duplicates = a.duplicates + b.duplicates;
    uncertified = a.uncertified + b.uncertified;
    disagreements = a.disagreements + b.disagreements;
  }

let stats_fields s =
  [
    ("raw", Jsonw.Int s.raw);
    ("programs", Jsonw.Int s.programs);
    ("candidates", Jsonw.Int s.candidates);
    ("admitted", Jsonw.Int s.admitted);
    ("conformance", Jsonw.Int s.conformance);
    ("weak", Jsonw.Int s.weak);
    ("interleaved", Jsonw.Int s.interleaved);
    ("operatorMutants", Jsonw.Int s.operator_mutants);
    ("rejected", Jsonw.Int s.rejected);
    ("duplicates", Jsonw.Int s.duplicates);
    ("uncertified", Jsonw.Int s.uncertified);
    ("disagreements", Jsonw.Int s.disagreements);
  ]

(* ------------------------------------------------------------------ *)
(* Target derivation                                                    *)

(* Render a target set exactly as Parse.to_source renders targets: a
   disjunction of full-outcome conjunctions (final locations first, then
   registers), over canonically sorted outcomes. Byte-compatibility here
   is what keeps store keys stable across print/parse round-trips. *)
let conjunction (o : Litmus.outcome) =
  let parts = ref [] in
  Array.iteri
    (fun l v -> parts := Printf.sprintf "%s == %d" (Litmus.loc_name l) v :: !parts)
    o.Litmus.final;
  Array.iteri
    (fun tid regs ->
      Array.iteri (fun r v -> parts := Printf.sprintf "P%d:r%d == %d" tid r v :: !parts) regs)
    o.Litmus.regs;
  "(" ^ String.concat " && " (List.rev !parts) ^ ")"

let describe = function
  | [] -> "false"
  | outcomes -> String.concat " || " (List.map conjunction outcomes)

let diff a b = List.filter (fun o -> not (List.mem o b)) a

(* The outcome frame a derivation works in. *)
type frame = {
  all : Litmus.outcome list;  (* every candidate outcome, sorted *)
  allowed : Litmus.outcome list;  (* consistent under the model *)
  sc : Litmus.outcome list;  (* consistent under plain SC *)
  serial : Litmus.outcome list;  (* whole-thread-at-a-time baseline *)
  ncandidates : int;
}

let frame ~engine probe =
  let cands = Enumerate.candidates probe in
  let all =
    List.sort_uniq compare (List.map (Litmus.outcome_of_execution probe) cands)
  in
  let allowed = Outcome.elements (Outcome.allowed ~engine probe.Litmus.model probe) in
  let sc = Outcome.elements (Outcome.allowed ~engine Model.Sc probe) in
  let serial = List.sort_uniq compare (Classify.sequential_outcomes probe) in
  { all; allowed; sc; serial; ncandidates = List.length cands }

let probe ~model ~nlocs ~name threads =
  {
    Litmus.name;
    family = "corpus-probe";
    model;
    threads;
    nlocs;
    target = (fun _ -> false);
    target_desc = "false";
  }

let with_target probe ~name ~family set =
  {
    probe with
    Litmus.name;
    family;
    target = (fun o -> List.mem o set);
    target_desc = describe set;
  }

(* Conformance: the outcomes the model forbids. Mutant ladder: weak
   behaviour if the model allows any, else SC-consistent behaviour that
   no serial execution reaches. *)
let conformance_set f = diff f.all f.allowed

let mutant_set f =
  match diff f.allowed f.sc with
  | _ :: _ as weak -> Some (Mutant_weak, weak)
  | [] -> ( match diff f.allowed f.serial with [] -> None | inter -> Some (Mutant_interleaved, inter))

let certify ~engine polarity test =
  match polarity with
  | Conformance -> Certify.conformance ~engine test
  | Mutant_weak | Mutant_interleaved ->
      Certify.mutant ~engine ~role:("corpus " ^ polarity_name polarity) test

(* One derivation under one engine: the admitted (polarity, test,
   verdict) list for a program, plus rejected/uncertified counts. *)
let derive ~engine ~model ~nlocs ~skeleton ~base_name ~family ~parent ~op ~mutant_only threads =
  let p = probe ~model ~nlocs ~name:base_name threads in
  match Litmus.well_formed p with
  | Error _ -> ([], 0, 1, 0)
  | Ok () ->
      let f = frame ~engine p in
      let consider =
        (if mutant_only then []
         else
           match conformance_set f with
           | [] -> []
           | set -> [ (Conformance, base_name ^ "-c", set) ])
        @
        match mutant_set f with
        | None -> []
        | Some (pol, set) ->
            let suffix = match pol with Mutant_weak -> "-w" | _ -> "-i" in
            [ (pol, base_name ^ suffix, set) ]
      in
      let entries, uncertified =
        List.fold_left
          (fun (acc, bad) (pol, name, set) ->
            let test = with_target p ~name ~family set in
            let verdict = certify ~engine pol test in
            if verdict.Certify.ok then
              (( { test; polarity = pol; skeleton; parent; op; verdict } :: acc), bad)
            else (acc, bad + 1))
          ([], 0) consider
      in
      let rejected = if consider = [] then 1 else 0 in
      (List.rev entries, f.ncandidates, rejected, uncertified)

let other_engine = function Engine.Enumerate -> Engine.Propagate | Engine.Propagate -> Engine.Enumerate

(* A derivation's observable admission verdict, for cross-engine
   comparison: what was admitted, with which target and certificate. *)
let verdict_fingerprint (entries, _, rejected, uncertified) =
  ( List.map
      (fun e ->
        ( e.test.Litmus.name,
          e.test.Litmus.target_desc,
          polarity_name e.polarity,
          e.verdict.Certify.ok,
          e.verdict.Certify.detail ))
      entries,
    rejected,
    uncertified )

let derive_checked ~engine ~cross_check ~model ~nlocs ~skeleton ~base_name ~family ~parent ~op
    ~mutant_only threads =
  let first =
    derive ~engine ~model ~nlocs ~skeleton ~base_name ~family ~parent ~op ~mutant_only threads
  in
  let disagreements =
    if not cross_check then 0
    else
      let second =
        derive ~engine:(other_engine engine) ~model ~nlocs ~skeleton ~base_name ~family ~parent ~op
          ~mutant_only threads
      in
      if verdict_fingerprint first = verdict_fingerprint second then 0 else 1
  in
  (first, disagreements)

(* ------------------------------------------------------------------ *)
(* Dedup                                                                *)

let entry_key e =
  e.skeleton ^ "|" ^ Model.name e.test.Litmus.model ^ "|" ^ polarity_name e.polarity

let dedup entries =
  let seen = Hashtbl.create 64 in
  let kept =
    List.filter
      (fun e ->
        let k = entry_key e in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      entries
  in
  (kept, List.length entries - List.length kept)

(* ------------------------------------------------------------------ *)
(* Parallel driving                                                     *)

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let short_hash s = Printf.sprintf "%Lx" (Key.fnv1a64 s)

(* Deterministic fan-out: shard [(k, n)] keeps every [n]-th element
   starting at index [k] of the already-canonical, already-sampled
   candidate list. Shards are disjoint by construction and their union
   is the unsharded list, so N processes each do 1/N of the oracle
   work and their corpora merge without overlap. *)
let shard_slice shard l =
  match shard with
  | None -> l
  | Some (k, n) ->
      if n <= 0 || k < 0 || k >= n then
        invalid_arg (Printf.sprintf "Admit: bad shard %d/%d (want 0 <= index < count)" k n)
      else List.filteri (fun i _ -> i mod n = k) l

let generated ?(engine = Engine.default) ?(cross_check = false) ?(domains = 1) ?bound ?(seed = 0)
    ?shard ~model shape =
  let skeletons, raw = Generate.enumerate shape in
  let sampled =
    match bound with None -> skeletons | Some b -> Generate.sample ~seed ~bound:b skeletons
  in
  let sampled = shard_slice shard sampled in
  let arr = Array.of_list sampled in
  let family = Version.family ~tag:"generated" in
  let results =
    with_pool ~domains (fun pool ->
        Pool.map_array pool ~n:(Array.length arr) ~f:(fun i ->
            let sk = arr.(i) in
            let skeleton = Generate.to_string sk in
            let base_name = "g" ^ short_hash skeleton in
            derive_checked ~engine ~cross_check ~model ~nlocs:(Generate.nlocs sk) ~skeleton
              ~base_name ~family ~parent:None ~op:None ~mutant_only:false
              (Generate.concretize sk)))
  in
  let entries, stats =
    Array.fold_left
      (fun (acc, st) ((entries, cands, rejected, uncertified), disagreements) ->
        let st =
          {
            st with
            candidates = st.candidates + cands;
            rejected = st.rejected + rejected;
            uncertified = st.uncertified + uncertified;
            disagreements = st.disagreements + disagreements;
          }
        in
        (acc @ entries, st))
      ([], { zero_stats with raw; programs = Array.length arr })
      results
  in
  let entries, dups = dedup entries in
  let count p = List.length (List.filter (fun e -> e.polarity = p) entries) in
  ( entries,
    {
      stats with
      admitted = List.length entries;
      conformance = count Conformance;
      weak = count Mutant_weak;
      interleaved = count Mutant_interleaved;
      duplicates = stats.duplicates + dups;
    } )

let operator_mutants ?(engine = Engine.default) ?(cross_check = false) ?(domains = 1) ?shard ~ops
    tests =
  let variants =
    List.concat_map
      (fun test ->
        List.concat_map
          (fun op ->
            List.map
              (fun (label, threads) -> (test, op, label, threads))
              (Mutator.apply_op op test.Litmus.threads))
          ops)
      tests
  in
  let variants = shard_slice shard variants in
  let arr = Array.of_list variants in
  let results =
    with_pool ~domains (fun pool ->
        Pool.map_array pool ~n:(Array.length arr) ~f:(fun i ->
            let parent, op, label, threads = arr.(i) in
            let op_name = Mutator.op_name op in
            let skeleton = Generate.to_string (Generate.canonical (Generate.of_threads threads)) in
            let base_name = Printf.sprintf "%s-%s-%s" parent.Litmus.name op_name label in
            derive_checked ~engine ~cross_check ~model:parent.Litmus.model
              ~nlocs:parent.Litmus.nlocs ~skeleton ~base_name
              ~family:(Version.family ~tag:("op-" ^ op_name))
              ~parent:(Some parent.Litmus.name) ~op:(Some op_name) ~mutant_only:true threads))
  in
  let entries, stats =
    Array.fold_left
      (fun (acc, st) ((entries, cands, rejected, uncertified), disagreements) ->
        let st =
          {
            st with
            candidates = st.candidates + cands;
            rejected = st.rejected + rejected;
            uncertified = st.uncertified + uncertified;
            disagreements = st.disagreements + disagreements;
          }
        in
        (acc @ entries, st))
      ([], { zero_stats with programs = Array.length arr })
      results
  in
  let entries, dups = dedup entries in
  let count p = List.length (List.filter (fun e -> e.polarity = p) entries) in
  ( entries,
    {
      stats with
      admitted = List.length entries;
      weak = count Mutant_weak;
      interleaved = count Mutant_interleaved;
      operator_mutants = List.length entries;
      duplicates = stats.duplicates + dups;
    } )
