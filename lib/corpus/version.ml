let generator = 1

let version =
  Printf.sprintf "gen%d+%s" generator
    (String.concat "+" (List.map Mcm_core.Mutator.op_name Mcm_core.Mutator.all_ops))

let family ~tag = Printf.sprintf "corpus/%s/%s" version tag
