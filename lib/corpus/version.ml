(* gen2: scoped instructions — the skeleton alphabet gains workgroup
   fences (Fw), specs carry a wgFence flag, and the scope-narrowing
   mutation operator joins the op list. Pre-scope corpora name gen1 and
   are refused at load with a regenerate hint. *)
let generator = 2

let version =
  Printf.sprintf "gen%d+%s" generator
    (String.concat "+" (List.map Mcm_core.Mutator.op_name Mcm_core.Mutator.all_ops))

let family ~tag = Printf.sprintf "corpus/%s/%s" version tag
