(** Deterministic pseudo-random number generation.

    The whole reproduction is driven by a SplitMix64 generator so that every
    experiment is reproducible from a single seed. SplitMix64 is chosen over
    [Stdlib.Random] because its state is a single [int64], it supports cheap
    {e splitting} (deriving independent streams for sub-experiments from a
    parent stream), and its output is identical across OCaml versions. *)

type t
(** A mutable generator. Generators are cheap (one heap word) — derive one
    per (environment, device, test, iteration) rather than sharing. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds give
    equal streams. *)

val of_int64 : int64 -> t
(** [of_int64 s] makes a generator with the exact 64-bit state [s]. *)

val copy : t -> t
(** [copy g] is an independent generator with [g]'s current state. *)

val split : t -> t
(** [split g] draws from [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** [next_int64 g] is the next raw 64-bit output. *)

val bits62 : t -> int
(** [bits62 g] is a uniform non-negative OCaml [int] (62 random bits). *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> float -> float
(** [exponential g mean] samples an exponential with the given mean;
    returns [0.] when [mean <= 0.]. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place g a] applies a uniform Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick g a] is a uniformly chosen element. @raise Invalid_argument on an
    empty array. *)

val mix : int -> int -> int
(** [mix a b] deterministically combines two integers into a seed, suitable
    for deriving per-case seeds like [mix run_seed case_index]. *)

val state : t -> int64
(** The generator's exact current state — [of_int64 (state g)] clones [g].
    Exposed so differential tests can assert two engines consumed exactly
    the same draws, and so {!Raw} states can round-trip through [t]. *)

val set_state : t -> int64 -> unit
(** [set_state g s] overwrites [g]'s state with [s]. *)

(** Allocation-free draws over caller-owned state.

    A {!Raw.state} is 8 bytes of [Bytes.t] holding the same SplitMix64
    state as a {!t}; advancing it is a raw store, so the hot simulation
    path allocates nothing per draw. Every function consumes {e exactly}
    the same draws as its boxed counterpart on {!t} — [Raw.float],
    [Raw.bernoulli] and [Raw.exponential] are bit-identical to {!float},
    {!bernoulli} and {!exponential}, including their conditional-draw
    behaviour ([bernoulli] with [p <= 0.] or [p >= 1.] and [exponential]
    with [mean <= 0.] draw nothing). *)
module Raw : sig
  type state = Bytes.t

  val make : unit -> state
  (** Fresh all-zero state (seed it with {!load} or {!split_into}). *)

  val load : state -> t -> unit
  (** [load b g] copies [g]'s current state into [b]; [g] is unchanged. *)

  val store : state -> t -> unit
  (** [store b g] writes [b]'s state back into [g]. *)

  val next_int64 : state -> int64
  (** The raw SplitMix64 step — same stream as {!Prng.next_int64}. *)

  val split_into : child:state -> parent:state -> unit
  (** [split_into ~child ~parent] is {!Prng.split}: draws once from
      [parent] and seeds [child] with the result. *)

  val float : state -> float -> float
  val bernoulli : state -> float -> bool
  val exponential : state -> float -> float
end
