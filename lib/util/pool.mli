(** A fixed-size domain pool for deterministic data parallelism.

    OCaml 5 gives the reproduction real shared-nothing parallelism; this
    pool is the one concurrency primitive the codebase uses for it. It is
    deliberately minimal — a fixed set of worker domains pulling task
    indices off a mutex/condition-protected queue, no work stealing, no
    futures — because every parallel workload here is a finite grid of
    independent, pre-seeded tasks (campaign iterations, tuning grid
    points) whose results must be {e bit-identical} to the serial code.

    Determinism contract: {!map_array} stores task [i]'s result at index
    [i], and {!map_reduce} folds the results in index order, so the
    outcome never depends on domain count or scheduling. A pool of
    [domains:1] spawns no worker domains at all and degenerates to the
    serial loop.

    The submitting domain participates in the work, so a pool of [k]
    domains applies [k] domains of compute ([k - 1] workers plus the
    caller). Pools are not re-entrant: submit from one domain at a time,
    and do not submit from inside a task. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (clamped
    below by 0). [domains] defaults to {!Domain.recommended_domain_count}.
    Call {!shutdown} when done; an un-shut-down pool leaks its domains
    until exit. *)

val domains : t -> int
(** Total domains applied to each job, counting the caller (≥ 1). *)

val map_array : ?chunk:int -> t -> n:int -> f:(int -> 'a) -> 'a array
(** [map_array t ~n ~f] computes [[| f 0; …; f (n-1) |]], scheduling the
    indices across the pool's domains. If one or more tasks raise, every
    remaining task still runs, the pool stays usable, and the exception
    of the lowest-indexed failing task is re-raised in the caller.

    Domains claim [chunk] consecutive indices per lock acquisition
    (clamped below by 1; default {!default_chunk}), so cheap tasks are
    not serialised on the queue mutex. Results land directly in the
    returned array — no per-task boxing. Chunking never affects the
    result, only lock traffic. *)

val map_reduce :
  ?chunk:int -> t -> n:int -> map:(int -> 'a) -> fold:('acc -> 'a -> 'acc) -> init:'acc -> 'acc
(** [map_reduce t ~n ~map ~fold ~init] is
    [fold (… (fold init (map 0)) …) (map (n-1))] — the maps run in
    parallel, the fold runs in the caller in index order, so the result
    equals the sequential fold even for non-commutative [fold].
    [chunk] as in {!map_array}. *)

val default_chunk : t -> n:int -> int
(** The chunk size an [n]-task job uses when [?chunk] is omitted:
    [max 1 (n / (4 * domains t))] — four claims per domain, balancing
    lock traffic against load-balance tail latency. Exposed so benches
    and CLIs can report the effective chunk alongside timings. *)

val chunk_for : domains:int -> n:int -> int
(** {!default_chunk} as a pure function of the domain count, for
    reporting the effective chunk without constructing a pool. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent. After shutdown
    the pool still accepts jobs but runs them in the caller alone. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] is [f] applied to a fresh pool, with a
    guaranteed {!shutdown} afterwards (also on exceptions). *)

val default_domains : unit -> int
(** {!Domain.recommended_domain_count}, clamped below by 1 — the pool's
    and the CLI's default parallelism. *)
