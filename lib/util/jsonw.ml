type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f then Buffer.add_string buf "\"nan\""
      else if f = Float.infinity then Buffer.add_string buf "\"inf\""
      else if f = Float.neg_infinity then Buffer.add_string buf "\"-inf\""
      else if f = 0. && 1. /. f < 0. then
        (* %.17g prints negative zero as "-0", which reads back as the
           integer 0 — the one finite float that would break byte-stable
           print/parse round-trips (the serve protocol's contract). *)
        Buffer.add_string buf "-0.0"
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_to buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
