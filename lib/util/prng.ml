type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let of_int64 s = { state = s }
let copy g = { state = g.state }

(* SplitMix64 (Steele, Lea, Flood 2014): state advances by the 64-bit golden
   ratio; output is the state pushed through two xor-shift-multiply rounds. *)
let next_int64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next_int64 g }

let bits62 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound = n in
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 g in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = if p <= 0. then false else if p >= 1. then true else float g 1.0 < p

let exponential g mean =
  if mean <= 0. then 0.
  else
    let u = float g 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    -.mean *. log u

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let mix a b =
  let g = { state = Int64.logxor (Int64.of_int a) (Int64.mul (Int64.of_int b) golden) } in
  bits62 g

let state g = g.state
let set_state g s = g.state <- s

(* Allocation-free mirror of the generator for hot loops. The state lives
   in caller-owned [Bytes.t] storage, so advancing it is a raw 8-byte
   store instead of a fresh [int64] box, and with the draw functions
   inlined the compiler keeps every intermediate [int64]/[float] unboxed.
   Each function must consume exactly the draws of its boxed counterpart
   above — the simulator's bit-identity contract depends on it. *)
module Raw = struct
  type state = Bytes.t

  (* The compiler's raw 64-bit bytes accesses (native endianness). The
     stdlib's [Bytes.get_int64_le]/[set_int64_le] wrappers are not
     [@inline] and a non-flambda build leaves them as out-of-line calls,
     which forces a boxed [int64] per draw — the exact allocation this
     module exists to avoid. With the primitives used directly, cmmgen's
     local unboxing keeps the whole draw chain in registers. Offset 0 is
     always in bounds: states come from [make]. *)
  external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
  external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

  let make () = Bytes.make 8 '\000'

  let load b g = unsafe_set64 b 0 g.state
  let store b g = g.state <- unsafe_get64 b 0

  let[@inline always] next_int64 b =
    let s = Int64.add (unsafe_get64 b 0) golden in
    unsafe_set64 b 0 s;
    let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let[@inline always] split_into ~child ~parent =
    unsafe_set64 child 0 (next_int64 parent)

  let[@inline always] float b x =
    let v = Int64.to_float (Int64.shift_right_logical (next_int64 b) 11) in
    x *. (v /. 9007199254740992.0 (* 2^53 *))

  let[@inline always] bernoulli b p =
    if p <= 0. then false else if p >= 1. then true else float b 1.0 < p

  let[@inline always] exponential b mean =
    if mean <= 0. then 0.
    else
      let u = float b 1.0 in
      let u = if u <= 0. then epsilon_float else u in
      -.mean *. log u
end
