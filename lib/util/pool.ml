(* A job is a batch of [n] independent tasks identified by index. [run]
   must never raise: map_array wraps the user function so failures are
   recorded in a side-channel instead of unwinding a worker. Indices are
   claimed [chunk] at a time so the mutex is taken O(n / chunk) times
   per job rather than O(n). *)
type job = {
  run : int -> unit;
  n : int;
  chunk : int;  (* indices claimed per lock acquisition, >= 1 *)
  mutable next : int;  (* first unclaimed index *)
  mutable completed : int;  (* tasks whose [run] has returned *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a job arrived, or shutdown was requested *)
  idle : Condition.t;  (* the current job completed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let domains t = t.size

(* Four chunks per domain balances lock traffic against tail latency:
   the last domain to finish holds at most ~1/4 of its share while the
   others idle, and a job takes only [4 * domains] lock acquisitions. *)
let chunk_for ~domains ~n = max 1 (n / (4 * max 1 domains))
let default_chunk t ~n = chunk_for ~domains:t.size ~n

(* Claim the next chunk [lo, hi) of [j]; the caller must hold [t.lock]. *)
let claim j =
  let lo = j.next in
  let hi = min j.n (lo + j.chunk) in
  j.next <- hi;
  (lo, hi)

let worker t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while
      (not t.stop)
      && (match t.job with None -> true | Some j -> j.next >= j.n)
    do
      Condition.wait t.work t.lock
    done;
    if t.stop then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      let lo, hi = claim j in
      Mutex.unlock t.lock;
      for i = lo to hi - 1 do
        j.run i
      done;
      Mutex.lock t.lock;
      j.completed <- j.completed + (hi - lo);
      if j.completed = j.n then Condition.broadcast t.idle;
      Mutex.unlock t.lock
    end
  done

let create ?domains () =
  let size =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Publish [job], help drain it from the submitting domain, and wait for
   the stragglers the workers still hold. *)
let run_job t job =
  Mutex.lock t.lock;
  assert (Option.is_none t.job);
  t.job <- Some job;
  Condition.broadcast t.work;
  while job.next < job.n do
    let lo, hi = claim job in
    Mutex.unlock t.lock;
    for i = lo to hi - 1 do
      job.run i
    done;
    Mutex.lock t.lock;
    job.completed <- job.completed + (hi - lo)
  done;
  while job.completed < job.n do
    Condition.wait t.idle t.lock
  done;
  t.job <- None;
  Mutex.unlock t.lock

let map_array ?chunk t ~n ~f =
  if n < 0 then invalid_arg "Pool.map_array: negative task count";
  if n = 0 then [||]
  else begin
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk t ~n in
    (* Results go straight into an ['a array] — no [Some (Ok v)] box per
       task. The array can't be preallocated without a dummy ['a], so
       the first task to complete installs [Array.make n v] with its own
       value as filler (empty arrays are a shared atom, so the CAS on
       [[||]] is race-free); every slot is then overwritten by exactly
       one task and read only after the job's completion barrier.
       Failures race into [err], keeping the lowest-indexed one. *)
    let results : 'a array Atomic.t = Atomic.make [||] in
    let err : (int * exn) option Atomic.t = Atomic.make None in
    let run i =
      match f i with
      | v ->
          let arr = Atomic.get results in
          let arr =
            if arr != [||] then arr
            else
              let fresh = Array.make n v in
              if Atomic.compare_and_set results [||] fresh then fresh
              else Atomic.get results
          in
          arr.(i) <- v
      | exception e ->
          let rec note () =
            let cur = Atomic.get err in
            match cur with
            | Some (j, _) when j <= i -> ()
            | _ -> if not (Atomic.compare_and_set err cur (Some (i, e))) then note ()
          in
          note ()
    in
    run_job t { run; n; chunk; next = 0; completed = 0 };
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None ->
        (* No failure and [n > 0], so some task installed the array. *)
        Atomic.get results
  end

let map_reduce ?chunk t ~n ~map ~fold ~init =
  Array.fold_left fold init (map_array ?chunk t ~n ~f:map)

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
