(* A job is a batch of [n] independent tasks identified by index. [run]
   must never raise: map_array wraps the user function so failures are
   recorded in the result slots instead of unwinding a worker. *)
type job = {
  run : int -> unit;
  n : int;
  mutable next : int;  (* first unclaimed index *)
  mutable completed : int;  (* tasks whose [run] has returned *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a job arrived, or shutdown was requested *)
  idle : Condition.t;  (* the current job completed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let domains t = t.size

(* Claim the next index of [j]; the caller must hold [t.lock]. *)
let claim j =
  let i = j.next in
  j.next <- i + 1;
  i

let worker t =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while
      (not t.stop)
      && (match t.job with None -> true | Some j -> j.next >= j.n)
    do
      Condition.wait t.work t.lock
    done;
    if t.stop then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      let i = claim j in
      Mutex.unlock t.lock;
      j.run i;
      Mutex.lock t.lock;
      j.completed <- j.completed + 1;
      if j.completed = j.n then Condition.broadcast t.idle;
      Mutex.unlock t.lock
    end
  done

let create ?domains () =
  let size =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Publish [job], help drain it from the submitting domain, and wait for
   the stragglers the workers still hold. *)
let run_job t job =
  Mutex.lock t.lock;
  assert (Option.is_none t.job);
  t.job <- Some job;
  Condition.broadcast t.work;
  while job.next < job.n do
    let i = claim job in
    Mutex.unlock t.lock;
    job.run i;
    Mutex.lock t.lock;
    job.completed <- job.completed + 1
  done;
  while job.completed < job.n do
    Condition.wait t.idle t.lock
  done;
  t.job <- None;
  Mutex.unlock t.lock

let map_array t ~n ~f =
  if n < 0 then invalid_arg "Pool.map_array: negative task count";
  if n = 0 then [||]
  else begin
    (* Each slot is written by exactly one task and read only after the
       job's completion barrier, so plain stores are race-free. *)
    let results = Array.make n None in
    let run i = results.(i) <- Some (try Ok (f i) with e -> Error e) in
    run_job t { run; n; next = 0; completed = 0 };
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_reduce t ~n ~map ~fold ~init =
  Array.fold_left fold init (map_array t ~n ~f:map)

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
