module Model = Mcm_memmodel.Model
module Relation = Mcm_memmodel.Relation
module Execution = Mcm_memmodel.Execution
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Scope = Mcm_memmodel.Scope

type kind = Reversing_po_loc | Weakening_po_loc | Weakening_sw

let kind_name = function
  | Reversing_po_loc -> "reversing-po-loc"
  | Weakening_po_loc -> "weakening-po-loc"
  | Weakening_sw -> "weakening-sw"

let all_kinds = [ Reversing_po_loc; Weakening_po_loc; Weakening_sw ]

let disruption = function
  | Reversing_po_loc ->
      "the po-loc-ordered pair of thread 0 is reversed, so the cycle is legal under fine-grained \
       interleaving alone"
  | Weakening_po_loc ->
      "the inner access pair moves to a second location, weakening po-loc to plain po"
  | Weakening_sw -> "one or both release/acquire fences are removed, breaking the sw edge"

type op = Sdl | Ror | Uoi | Fsn

let op_name = function Sdl -> "sdl" | Ror -> "ror" | Uoi -> "uoi" | Fsn -> "fsn"
let all_ops = [ Sdl; Ror; Uoi; Fsn ]

let op_of_string s =
  match String.lowercase_ascii s with
  | "sdl" | "delete" | "deletion" -> Some Sdl
  | "ror" | "reorder" | "relax" -> Some Ror
  | "uoi" | "unfence" | "defence" -> Some Uoi
  | "fsn" | "narrow" | "scope-narrow" -> Some Fsn
  | _ -> None

let op_disruption = function
  | Sdl ->
      "statement deletion: one memory access is removed, dropping every ordering edge through it"
  | Ror -> "ordering relaxation: an adjacent program-order pair is reversed"
  | Uoi -> "fence removal: one fence is deleted, narrowing the synchronisation it provided"
  | Fsn ->
      "fence scope narrowing: one device-scope fence is demoted to workgroup scope, so it no \
       longer orders accesses across workgroups"

let replace_thread threads tid instrs =
  let copy = Array.copy threads in
  copy.(tid) <- instrs;
  copy

let delete_at instrs i = List.filteri (fun j _ -> j <> i) instrs

let apply_op op threads =
  let variants = ref [] in
  let add tid i t = variants := (Printf.sprintf "t%d.%d" tid i, t) :: !variants in
  Array.iteri
    (fun tid instrs ->
      let arr = Array.of_list instrs in
      let n = Array.length arr in
      match op with
      | Sdl ->
          (* Delete one memory access; never empty a thread (the outcome
             frame would silently change shape). *)
          for i = 0 to n - 1 do
            if Instr.is_memory_access arr.(i) && n > 1 then
              add tid i (replace_thread threads tid (delete_at instrs i))
          done
      | Ror ->
          (* Reverse one adjacent program-order pair. Identical pairs and
             fence-fence pairs swap to themselves and are skipped. *)
          for i = 0 to n - 2 do
            let a = arr.(i) and b = arr.(i + 1) in
            if a <> b && (Instr.is_memory_access a || Instr.is_memory_access b) then
              let swapped =
                List.mapi (fun j x -> if j = i then b else if j = i + 1 then a else x) instrs
              in
              add tid i (replace_thread threads tid swapped)
          done
      | Uoi ->
          for i = 0 to n - 1 do
            if Instr.is_fence arr.(i) then add tid i (replace_thread threads tid (delete_at instrs i))
          done
      | Fsn ->
          (* Demote one device-scope fence to workgroup scope; already-
             narrow fences demote to themselves and are skipped. *)
          for i = 0 to n - 1 do
            if Instr.is_fence arr.(i) && Instr.scope arr.(i) = Scope.Device then
              let narrowed =
                List.mapi
                  (fun j x -> if j = i then Instr.with_scope Scope.Workgroup x else x)
                  instrs
              in
              add tid i (replace_thread threads tid narrowed)
          done)
    threads;
  List.rev !variants

type pair = { conformance : Litmus.t; mutants : Litmus.t list }

let ( let* ) = Result.bind

(* Access kinds for template slots: read, write, read-modify-write. *)
type access = R | W | U

(* Build one instruction per template slot, in conformance event order.
   Writes get unique increasing values per location; registers number
   sequentially per thread — the paper's concretisation (Sec. 3.1). *)
let make_instrs roles =
  let next_value = Hashtbl.create 4 and next_reg = Hashtbl.create 4 in
  let fresh tbl key =
    let v = try Hashtbl.find tbl key with Not_found -> 0 in
    Hashtbl.replace tbl key (v + 1);
    v
  in
  List.map
    (fun (tid, access, loc) ->
      match access with
      | R -> Instr.load ~reg:(fresh next_reg tid) ~loc ()
      | W -> Instr.store ~loc ~value:(1 + fresh next_value loc) ()
      | U -> Instr.rmw ~reg:(fresh next_reg tid) ~loc ~value:(1 + fresh next_value loc) ())
    roles

let com_edge rels a b = Relation.mem rels.Execution.com a b
let rf_edge rels a b = Relation.mem rels.Execution.rf a b

(* ------------------------------------------------------------------ *)
(* Mutator 1: reversing po-loc on three events (Fig. 3a).              *)
(*   T0: a; b   (po-loc)      T1: c                                    *)
(*   cycle: b -com-> c -com-> a -po-loc-> b                            *)
(* ------------------------------------------------------------------ *)

let m1_pattern ~a ~b ~c _x rels = com_edge rels b c && com_edge rels c a

let m1_build ~name (ka, kb, kc) =
  match make_instrs [ (0, ka, 0); (0, kb, 0); (1, kc, 0) ] with
  | [ ia; ib; ic ] ->
      let conf_threads = [| [ ia; ib ]; [ ic ] |] in
      let mut_threads = [| [ ib; ia ]; [ ic ] |] in
      (* All-plain-writes instantiations must observe a specific co chain
         through an observer thread (Sec. 3.1). *)
      let require_observer = (ka, kb, kc) = (W, W, W) in
      let* conformance =
        Template.derive_first ~name ~family:(kind_name Reversing_po_loc)
          ~model:Model.Sc_per_location ~nlocs:1
          ~pattern:(m1_pattern ~a:0 ~b:1 ~c:2)
          ~polarity:Template.Conformance
          (Template.observer_ladder ~require_observer ~obs_loc:0 conf_threads)
      in
      let* mutant =
        Template.derive_first ~name:(name ^ "-m") ~family:(kind_name Reversing_po_loc)
          ~model:Model.Sc_per_location ~nlocs:1
          ~pattern:(m1_pattern ~a:1 ~b:0 ~c:2)
          ~polarity:Template.Mutant
          (Template.observer_ladder ~require_observer ~obs_loc:0 mut_threads)
      in
      Ok { conformance; mutants = [ mutant ] }
  | _ -> Error (name ^ ": internal: wrong instruction count")

(* All non-empty subsets of [slots], largest first (then generation
   order) — used to find the maximum-RMW variant the paper includes. *)
let nonempty_subsets slots =
  let rec powerset = function
    | [] -> [ [] ]
    | s :: rest ->
        let tails = powerset rest in
        List.map (fun t -> s :: t) tails @ tails
  in
  let nonempty = List.filter (fun s -> s <> []) (powerset slots) in
  List.stable_sort (fun s1 s2 -> compare (List.length s2) (List.length s1)) nonempty

let m1_rmw_variant ~name (ka, kb, kc) =
  (* A read in slot a cannot become an RMW: its trailing write would sit
     in po-loc between a and b and interfere with the cycle (Sec. 3.1).
     Slots b and c may be upgraded; take the largest upgrade for which
     both the conformance test and the mutant still derive. *)
  let upgradable = (if ka = W then [ `A ] else []) @ [ `B; `C ] in
  let apply subset =
    let up slot k = if List.mem slot subset then U else k in
    (up `A ka, up `B kb, up `C kc)
  in
  let rec try_subsets = function
    | [] -> Error (name ^ "-rmw: no RMW upgrade derives")
    | subset :: rest -> (
        match m1_build ~name:(name ^ "-rmw") (apply subset) with
        | Ok pair -> Ok pair
        | Error _ -> try_subsets rest)
  in
  try_subsets (nonempty_subsets upgradable)

let mutator1 () =
  let bases = [ ((R, R, W), "CoRR"); ((W, R, W), "CoWR"); ((R, W, W), "CoRW"); ((W, W, W), "CoWW") ] in
  List.fold_left
    (fun acc (combo, name) ->
      let* pairs = acc in
      let* base = m1_build ~name combo in
      let* rmw = m1_rmw_variant ~name combo in
      Ok (pairs @ [ base; rmw ]))
    (Ok []) bases

(* ------------------------------------------------------------------ *)
(* Mutator 2: weakening po-loc on four events (Fig. 3b).               *)
(*   T0: a; b   T1: c; d      all on x                                 *)
(*   cycle: a -po-loc-> b -com-> c -po-loc-> d -com-> a                *)
(*   disruptor: b and c move to location y (po-loc weakens to po)      *)
(* ------------------------------------------------------------------ *)

let m2_pattern _x rels = com_edge rels 1 2 && com_edge rels 3 0

let m2_combos =
  (* Each com edge needs at least one write: (b,c) and (d,a) cannot both
     be reads. Deduplicate under the thread-swap symmetry
     (a,b,c,d) ~ (c,d,a,b). *)
  let accesses = [ R; W ] in
  let all =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            List.concat_map
              (fun c -> List.map (fun d -> (a, b, c, d)) accesses)
              accesses)
          accesses)
      accesses
  in
  let valid (a, b, c, d) = not (b = R && c = R) && not (d = R && a = R) in
  let canonical (a, b, c, d) = min (a, b, c, d) (c, d, a, b) in
  List.sort_uniq compare (List.map canonical (List.filter valid all))

let m2_name combo =
  (* Structure names follow the classic tests the disruptor recreates. *)
  match combo with
  | W, W, R, R | R, R, W, W -> "MP-CO"
  | R, W, R, W -> "LB-CO"
  | W, R, W, R -> "SB-CO"
  | W, W, W, W -> "2+2W-CO"
  | W, W, R, W | R, W, W, W -> "S-CO"
  | W, W, W, R | W, R, W, W -> "R-CO"
  | _ -> "m2-unknown"

let m2_build (ka, kb, kc, kd) =
  let name = m2_name (ka, kb, kc, kd) in
  let build_threads locs =
    match make_instrs [ (0, ka, locs.(0)); (0, kb, locs.(1)); (1, kc, locs.(2)); (1, kd, locs.(3)) ] with
    | [ ia; ib; ic; id ] -> Ok [| [ ia; ib ]; [ ic; id ] |]
    | _ -> Error (name ^ ": internal: wrong instruction count")
  in
  let* conf_threads = build_threads [| 0; 0; 0; 0 |] in
  let* mut_threads = build_threads [| 0; 1; 1; 0 |] in
  let require_observer = (ka, kb, kc, kd) = (W, W, W, W) in
  let* conformance =
    Template.derive_first ~name ~family:(kind_name Weakening_po_loc)
      ~model:Model.Sc_per_location ~nlocs:1 ~pattern:m2_pattern
      ~polarity:Template.Conformance
      (Template.observer_ladder ~require_observer ~obs_loc:0 conf_threads)
  in
  let* mutant =
    Template.derive_first ~name:(name ^ "-m") ~family:(kind_name Weakening_po_loc)
      ~model:Model.Sc_per_location ~nlocs:2 ~pattern:m2_pattern
      ~polarity:Template.Mutant
      (Template.observer_ladder ~obs_loc:0 mut_threads
      @ (match Template.observer_ladder ~obs_loc:1 mut_threads with
        | _ :: with_obs -> with_obs
        | [] -> []))
  in
  Ok { conformance; mutants = [ mutant ] }

let mutator2 () =
  List.fold_left
    (fun acc combo ->
      let* pairs = acc in
      let* pair = m2_build combo in
      Ok (pairs @ [ pair ]))
    (Ok []) m2_combos

(* ------------------------------------------------------------------ *)
(* Mutator 3: weakening sw on four events (Fig. 3c).                   *)
(*   T0: a; F; b    T1: c; F; d                                        *)
(*   b (after the releasing fence) must write, c (before the acquiring *)
(*   fence) must read, and b -rf-> c establishes sw; d -com-> a closes *)
(*   the cycle. RMWs in slots b/c recover SB, R and 2+2W (Sec. 3.3).   *)
(*   disruptor: remove one or both fences.                             *)
(* ------------------------------------------------------------------ *)

let m3_structures =
  [
    ("MP-relacq", (W, 0), (W, 1), (R, 1), (R, 0));
    ("LB-relacq", (R, 0), (W, 1), (R, 1), (W, 0));
    ("S-relacq", (W, 0), (W, 1), (R, 1), (W, 0));
    ("SB-relacq", (W, 0), (U, 1), (U, 1), (R, 0));
    ("R-relacq", (W, 0), (W, 1), (U, 1), (R, 0));
    ("2+2W-relacq", (W, 0), (W, 1), (U, 1), (W, 0));
  ]

let m3_pattern ~a ~b ~c ~d _x rels = rf_edge rels b c && com_edge rels d a

let m3_build (name, (ka, la), (kb, lb), (kc, lc), (kd, ld)) =
  match make_instrs [ (0, ka, la); (0, kb, lb); (1, kc, lc); (1, kd, ld) ] with
  | [ ia; ib; ic; id ] ->
      let threads ~fence0 ~fence1 =
        let seq first fence second = if fence then [ first; Instr.fence (); second ] else [ first; second ] in
        [| seq ia fence0 ib; seq ic fence1 id |]
      in
      (* Event ids depend on which fences remain. *)
      let ids ~fence0 ~fence1 =
        let b = if fence0 then 2 else 1 in
        let c = b + 1 in
        let d = if fence1 then c + 2 else c + 1 in
        (0, b, c, d)
      in
      let derive ~fence0 ~fence1 ~polarity name =
        let a, b, c, d = ids ~fence0 ~fence1 in
        Template.derive_first ~name ~family:(kind_name Weakening_sw)
          ~model:Model.Relacq_sc_per_location ~nlocs:2
          ~pattern:(m3_pattern ~a ~b ~c ~d)
          ~polarity
          (Template.observer_ladder ~obs_loc:0 (threads ~fence0 ~fence1))
      in
      let* conformance = derive ~fence0:true ~fence1:true ~polarity:Template.Conformance name in
      let* m1 = derive ~fence0:false ~fence1:true ~polarity:Template.Mutant (name ^ "-m1") in
      let* m2 = derive ~fence0:true ~fence1:false ~polarity:Template.Mutant (name ^ "-m2") in
      let* m3 = derive ~fence0:false ~fence1:false ~polarity:Template.Mutant (name ^ "-m3") in
      Ok { conformance; mutants = [ m1; m2; m3 ] }
  | _ -> Error (name ^ ": internal: wrong instruction count")

let mutator3 () =
  List.fold_left
    (fun acc structure ->
      let* pairs = acc in
      let* pair = m3_build structure in
      Ok (pairs @ [ pair ]))
    (Ok []) m3_structures

let instantiate = function
  | Reversing_po_loc -> mutator1 ()
  | Weakening_po_loc -> mutator2 ()
  | Weakening_sw -> mutator3 ()
