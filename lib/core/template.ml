module Model = Mcm_memmodel.Model
module Execution = Mcm_memmodel.Execution
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Enumerate = Mcm_litmus.Enumerate

type polarity = Conformance | Mutant

type pattern = Execution.t -> Execution.relations -> bool

let outcome_set_to_string outcomes =
  let rendered = List.map Litmus.outcome_to_string outcomes in
  match rendered with
  | [ one ] -> one
  | many when List.length many <= 4 -> "one of: " ^ String.concat " ; " many
  | many ->
      let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
      Printf.sprintf "one of %d outcomes, e.g.: %s ; ..." (List.length many)
        (String.concat " ; " (take 3 many))

let diff_outcomes a b = List.filter (fun o -> not (List.mem o b)) a
let inter_outcomes a b = List.filter (fun o -> List.mem o b) a

let derive ~name ~family ~model ~nlocs ~pattern ~polarity threads =
  let probe =
    {
      Litmus.name;
      family;
      model;
      threads;
      nlocs;
      target = (fun _ -> false);
      target_desc = "(deriving)";
    }
  in
  match Litmus.well_formed probe with
  | Error e -> Error (Printf.sprintf "%s: ill-formed: %s" name e)
  | Ok () ->
      let candidates = Enumerate.candidates probe in
      let all = ref [] and matching = ref [] in
      let consistent = ref [] and consistent_off_pattern = ref [] in
      List.iter
        (fun x ->
          let outcome = Litmus.outcome_of_execution probe x in
          let matches = pattern x (Execution.relations x) in
          all := outcome :: !all;
          if matches then matching := outcome :: !matching;
          if Model.consistent model x then begin
            consistent := outcome :: !consistent;
            if not matches then consistent_off_pattern := outcome :: !consistent_off_pattern
          end)
        candidates;
      let all = List.sort_uniq compare !all in
      let matching = List.sort_uniq compare !matching in
      let consistent = List.sort_uniq compare !consistent in
      let consistent_off_pattern = List.sort_uniq compare !consistent_off_pattern in
      let target_set =
        match polarity with
        | Conformance ->
            (* Any outcome no consistent execution can produce witnesses a
               violation; the pattern-specific check below guarantees the
               template's own cycle is among the detectable ones. *)
            if diff_outcomes matching consistent = [] then []
            else diff_outcomes all consistent
        | Mutant ->
            (* Outcomes that, among consistent executions, uniquely witness
               the formerly-forbidden pattern: observing one kills the
               mutant without ambiguity. *)
            diff_outcomes (inter_outcomes matching consistent) consistent_off_pattern
      in
      if target_set = [] then
        Error
          (Printf.sprintf "%s: empty %s target set (%d pattern outcomes, %d consistent)" name
             (match polarity with Conformance -> "conformance" | Mutant -> "mutant")
             (List.length matching) (List.length consistent))
      else
        Ok
          {
            probe with
            Litmus.target = (fun o -> List.mem o target_set);
            target_desc = outcome_set_to_string target_set;
          }

let derive_first ~name ~family ~model ~nlocs ~pattern ~polarity variants =
  let rec go last_error = function
    | [] -> Error last_error
    | threads :: rest -> (
        match derive ~name ~family ~model ~nlocs ~pattern ~polarity threads with
        | Ok t -> Ok t
        | Error e -> go e rest)
  in
  go (Printf.sprintf "%s: no program variants" name) variants

let observer_thread ~obs_loc n_reads =
  List.init n_reads (fun r -> Instr.load ~reg:r ~loc:obs_loc ())

let observer_ladder ?(require_observer = false) ~obs_loc threads =
  let with_observer n = Array.append threads [| observer_thread ~obs_loc n |] in
  let base = if require_observer then [] else [ threads ] in
  base @ [ with_observer 2; with_observer 3 ]
