(** The three MC Mutants mutators (Sec. 3.1–3.3, Fig. 3).

    Each mutator owns an abstract happens-before cycle template and an
    edge disruptor. Instantiating the template over all combinations of
    reads, writes and RMWs yields the {e conformance tests}; applying the
    disruptor yields the {e mutants}. Target behaviours are derived, not
    hand-written: every produced test is machine-checked by enumeration
    (via {!Template}) so that conformance targets are disallowed and
    mutant targets allowed under the test's MCS.

    Expected totals (paper Tab. 2):
    {ul
    {- reversing [po-loc]: 8 conformance tests, 8 mutants;}
    {- weakening [po-loc]: 6 conformance tests, 6 mutants;}
    {- weakening [sw]: 6 conformance tests, 18 mutants.}} *)

type kind =
  | Reversing_po_loc
      (** Fig. 3a: three events, two threads; swaps the [po-loc]-ordered
          pair of thread 0, legalising the behaviour under plain SC. A
          testing environment kills these mutants with fine-grained
          interleaving alone. *)
  | Weakening_po_loc
      (** Fig. 3b: four events on one location; the disruptor moves the
          inner pair to a second location, weakening [po-loc] to [po] and
          turning the test into a classic two-location weak-memory test. *)
  | Weakening_sw
      (** Fig. 3c: four events plus two release/acquire fences; the
          disruptor removes one or both fences, breaking [sw]. *)

val kind_name : kind -> string
(** ["reversing-po-loc"], ["weakening-po-loc"], ["weakening-sw"] — also
    used as the [family] field of generated tests. *)

val all_kinds : kind list

val disruption : kind -> string
(** [disruption k] is a one-line description of the happens-before edge
    [k]'s disruptor breaks — the thing that must flip the targeted weak
    behaviour from disallowed to allowed. Quoted in the oracle's
    mutant-validity certificates. *)

(** A conformance test paired with its mutants. *)
type pair = {
  conformance : Mcm_litmus.Litmus.t;
  mutants : Mcm_litmus.Litmus.t list;
}

val instantiate : kind -> (pair list, string) result
(** [instantiate k] generates every instantiation of mutator [k]. An
    [Error] indicates a generator bug (an underivable target), never a
    user error. *)
