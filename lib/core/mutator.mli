(** The three MC Mutants mutators (Sec. 3.1–3.3, Fig. 3).

    Each mutator owns an abstract happens-before cycle template and an
    edge disruptor. Instantiating the template over all combinations of
    reads, writes and RMWs yields the {e conformance tests}; applying the
    disruptor yields the {e mutants}. Target behaviours are derived, not
    hand-written: every produced test is machine-checked by enumeration
    (via {!Template}) so that conformance targets are disallowed and
    mutant targets allowed under the test's MCS.

    Expected totals (paper Tab. 2):
    {ul
    {- reversing [po-loc]: 8 conformance tests, 8 mutants;}
    {- weakening [po-loc]: 6 conformance tests, 6 mutants;}
    {- weakening [sw]: 6 conformance tests, 18 mutants.}} *)

type kind =
  | Reversing_po_loc
      (** Fig. 3a: three events, two threads; swaps the [po-loc]-ordered
          pair of thread 0, legalising the behaviour under plain SC. A
          testing environment kills these mutants with fine-grained
          interleaving alone. *)
  | Weakening_po_loc
      (** Fig. 3b: four events on one location; the disruptor moves the
          inner pair to a second location, weakening [po-loc] to [po] and
          turning the test into a classic two-location weak-memory test. *)
  | Weakening_sw
      (** Fig. 3c: four events plus two release/acquire fences; the
          disruptor removes one or both fences, breaking [sw]. *)

val kind_name : kind -> string
(** ["reversing-po-loc"], ["weakening-po-loc"], ["weakening-sw"] — also
    used as the [family] field of generated tests. *)

val all_kinds : kind list

val disruption : kind -> string
(** [disruption k] is a one-line description of the happens-before edge
    [k]'s disruptor breaks — the thing that must flip the targeted weak
    behaviour from disallowed to allowed. Quoted in the oracle's
    mutant-validity certificates. *)

(** {2 Corpus operator layer}

    Beyond the paper's three template mutators, the generated-corpus
    subsystem ({!Mcm_corpus}) applies classic mutation {e operators} to
    existing programs — dextool's taxonomy transplanted to litmus tests.
    Operators are pure program transforms; they carry no derived target.
    The corpus admission gate derives and oracle-certifies a target for
    every variant ({!Mcm_corpus.Admit}), exactly as for enumerated
    programs, so operator mutants are machine-checked the same way the
    paper suite is. *)

type op =
  | Sdl
      (** statement deletion: remove one memory access (never emptying a
          thread) — the [sdl] operator. Dropping an access drops every
          program-order edge through it, typically legalising an
          interleaving-killed behaviour. *)
  | Ror
      (** ordering relaxation: reverse one adjacent program-order pair —
          [ror]-style, with "relational operator" read as the po
          constraint between neighbours. Generalises the paper's
          reversing-po-loc disruptor to any adjacent pair. *)
  | Uoi
      (** fence removal: delete one fence — [uoi]-style interface
          weakening. Generalises the paper's weakening-sw disruptor to
          one fence at a time on any test. *)
  | Fsn
      (** fence scope narrowing: demote one device-scope fence to
          workgroup scope. The fence still exists — it merely stops
          ordering accesses across workgroups, which is precisely the
          classic driver scope bug {!Mcm_gpu.Bug.Scope_dropped}
          injects. Mutants from this operator are killable only by
          inter-workgroup testing environments. *)

val op_name : op -> string
(** ["sdl"], ["ror"], ["uoi"], ["fsn"] — the CLI and JSON spelling. *)

val all_ops : op list

val op_of_string : string -> op option
(** Parses {!op_name} output (case-insensitive); also accepts the
    aliases ["delete"], ["reorder"], ["unfence"] and friends. *)

val op_disruption : op -> string
(** One-line description of what the operator breaks, quoted in corpus
    certificates alongside {!disruption}. *)

val apply_op : op -> Mcm_litmus.Instr.t list array -> (string * Mcm_litmus.Instr.t list array) list
(** [apply_op op threads] is every single-application variant of [op] on
    [threads], in deterministic (thread, index) order, each labelled
    ["t<tid>.<idx>"] by the program point it transformed. Variants that
    are identities (swapping equal instructions) or that would empty a
    thread are skipped. Well-formedness is preserved: deletion and
    reordering never introduce duplicate registers or values. *)

(** A conformance test paired with its mutants. *)
type pair = {
  conformance : Mcm_litmus.Litmus.t;
  mutants : Mcm_litmus.Litmus.t list;
}

val instantiate : kind -> (pair list, string) result
(** [instantiate k] generates every instantiation of mutator [k]. An
    [Error] indicates a generator bug (an underivable target), never a
    user error. *)
